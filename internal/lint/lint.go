// Package lint is a from-scratch static-analysis framework for the
// gstm repository, built directly on go/parser, go/ast and go/types
// (no golang.org/x/tools dependency).
//
// The paper's whole pipeline — TTS profiling, TSA model construction,
// guided commit — assumes transaction bodies are pure with respect to
// retry: TL2 may re-execute an Atomic closure many times before it
// commits, so any side effect, escaped *Tx, or raw Var access silently
// corrupts both program state and the profiled transaction sequences
// the model is built from. Package lint makes those patterns
// unwritable at build time: a registry of STM-aware checkers walks
// type-checked packages and reports diagnostics with stable check IDs
// (gstm001..gstm010) that CI gates on via cmd/gstmlint.
//
// Diagnostics can be suppressed with an inline directive naming the
// check(s) being waived:
//
//	v.Store(0) //gstm:ignore gstm003 -- setup helper, no tx in flight
//
// The directive applies to its own line and the line directly below
// (for comments standing alone above the construct). Explicit check
// IDs are required: a bare //gstm:ignore suppresses nothing and is
// itself reported by gstm000, as is any directive that suppressed no
// diagnostic in the run — silent blanket ignores would hide new
// findings forever. Some checkers attach machine-applicable fixes to
// their diagnostics; ApplyFixes materializes them (gstmlint -fix).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, a stable check ID and a
// human-readable message. Interprocedural checks additionally carry
// the call chain from the transaction body to the offending operation.
type Diagnostic struct {
	Position token.Position
	Check    string // stable ID, e.g. "gstm001"
	Message  string
	// Chain is the call path for interprocedural findings (gstm006),
	// outermost first: ["tx TxMove", "jitter", "rand.Intn"]. Nil for
	// intraprocedural checks.
	Chain []string
	// Fix is the machine-applicable rewrite, when the checker knows one
	// (see fix.go). Nil means the finding needs a human.
	Fix *Fix
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Position.Filename,
		d.Position.Line, d.Position.Column, d.Message, d.Check)
}

// Checker is one lint pass. Implementations are stateless: Check may
// be called concurrently for different packages.
type Checker interface {
	// ID returns the stable check ID (e.g. "gstm001").
	ID() string
	// Name returns the short mnemonic (e.g. "retry-unsafe").
	Name() string
	// Doc returns a one-paragraph description of what the check flags
	// and why the pattern is unsafe under transactional retry.
	Doc() string
	// Check inspects one package and reports findings through pass.
	Check(pass *Pass)
}

// registry holds every Register'ed checker, keyed by ID.
var registry = map[string]Checker{}

// Register adds a checker to the global registry. It panics on
// duplicate IDs — checker IDs are API and must stay unique.
func Register(c Checker) {
	if _, dup := registry[c.ID()]; dup {
		panic("lint: duplicate checker ID " + c.ID())
	}
	registry[c.ID()] = c
}

// Checkers returns all registered checkers sorted by ID.
func Checkers() []Checker {
	out := make([]Checker, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Lookup resolves a checker by ID or mnemonic name.
func Lookup(idOrName string) (Checker, bool) {
	if c, ok := registry[idOrName]; ok {
		return c, true
	}
	for _, c := range registry {
		if c.Name() == idOrName {
			return c, true
		}
	}
	return nil, false
}

// Pass carries one package through one checker.
type Pass struct {
	Fset    *token.FileSet
	Pkg     *Package
	checker Checker
	diags   *[]Diagnostic

	// prog is the module-wide program view (function index across every
	// package of the Run), used by interprocedural checkers.
	prog *program

	// contexts caches the package's transactional contexts, shared by
	// every checker that runs on the package.
	contexts *[]*txContext
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Fset.Position(pos),
		Check:    p.checker.ID(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAtf records a diagnostic at an already-rendered position
// (used by module-wide checks whose finding lives in a different file
// than the package being walked).
func (p *Pass) ReportAtf(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: pos,
		Check:    p.checker.ID(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChainf records a diagnostic that carries a call chain.
func (p *Pass) ReportChainf(pos token.Pos, chain []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Fset.Position(pos),
		Check:    p.checker.ID(),
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Run executes the given checkers (all registered ones if nil) over
// the packages and returns the surviving diagnostics, sorted by
// position, deduplicated, and filtered through //gstm:ignore
// directives. Packages marked Dep (loaded only to complete the module
// view, see Loader.LoadWithDeps) inform the call graph and footprints
// but are not themselves checked. When the gstm000 hygiene check is
// among the selected checkers, directives that suppressed nothing are
// reported after filtering.
func Run(pkgs []*Package, checkers []Checker) []Diagnostic {
	if checkers == nil {
		checkers = Checkers()
	}
	ran := map[string]bool{}
	for _, c := range checkers {
		ran[c.ID()] = true
	}
	prog := newProgram(pkgs)
	tracker := newDirectiveTracker()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Dep {
			continue
		}
		ctxs := new([]*txContext)
		for _, c := range checkers {
			pass := &Pass{Fset: pkg.Fset, Pkg: pkg, checker: c, diags: &diags, prog: prog, contexts: ctxs}
			c.Check(pass)
		}
		diags = tracker.suppress(diags, pkg)
	}
	if ran[hygieneID] {
		diags = append(diags, tracker.warnings(ran)...)
	}
	sortDiags(diags)
	return dedupe(diags)
}

// sortDiags orders diagnostics by position, then check ID, then
// message — a total order, so multi-package runs are deterministic
// regardless of package iteration order.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// dedupe removes exact duplicates: loading the same file through more
// than one path (a lint target that is also another target's
// dependency) or reaching one construct via two walks must yield one
// finding, not two. The message stays in the key — distinct findings
// can legitimately share a position (e.g. two gstm006 effects behind
// one helper call).
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	seen := map[string]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d:%d:%s:%s", d.Position.Filename, d.Position.Line,
			d.Position.Column, d.Check, d.Message)
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out
}

// ignoreDirective is the suppression comment prefix.
const ignoreDirective = "gstm:ignore"

// hygieneID is gstm000, the directive-hygiene pseudo-check (see
// hygiene.go); Run drives it from the suppression bookkeeping.
const hygieneID = "gstm000"

type lineKey struct {
	file string
	line int
}

// directive is one parsed //gstm:ignore comment.
type directive struct {
	pos  token.Position
	ids  []string // parsed check IDs; empty = malformed bare directive
	used bool     // suppressed at least one diagnostic this run
}

// directiveTracker collects every ignore directive seen across the
// run's packages (deduplicating files loaded through multiple paths)
// and records which ones actually suppressed a diagnostic.
type directiveTracker struct {
	seen   map[lineKey]bool
	byLine map[lineKey][]*directive
	all    []*directive
}

func newDirectiveTracker() *directiveTracker {
	return &directiveTracker{seen: map[lineKey]bool{}, byLine: map[lineKey][]*directive{}}
}

// collect parses pkg's ignore directives into the tracker.
func (tr *directiveTracker) collect(pkg *Package) {
	for _, f := range pkg.Files {
		tokFile := pkg.Fset.File(f.Pos())
		if tokFile == nil {
			continue
		}
		fname := tokFile.Name()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				// Allow a trailing free-form justification after " -- ".
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				at := lineKey{fname, pos.Line}
				if tr.seen[at] {
					continue // same file through another load path
				}
				tr.seen[at] = true
				d := &directive{
					pos: pos,
					ids: strings.FieldsFunc(rest, func(r rune) bool {
						return r == ',' || r == ' ' || r == '\t'
					}),
				}
				tr.all = append(tr.all, d)
				// The directive covers its own line and the line below
				// (comments standing alone above the construct).
				for _, l := range []int{pos.Line, pos.Line + 1} {
					k := lineKey{fname, l}
					tr.byLine[k] = append(tr.byLine[k], d)
				}
			}
		}
	}
}

// suppress folds pkg's directives into the tracker and drops the
// accumulated diagnostics they cover. Only directives naming the
// diagnostic's check ID suppress it — a bare //gstm:ignore matches
// nothing (gstm000 reports it instead).
func (tr *directiveTracker) suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	tr.collect(pkg)
	if len(tr.byLine) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range tr.byLine[lineKey{d.Position.Filename, d.Position.Line}] {
			for _, id := range dir.ids {
				if id == d.Check {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// warnings reports directive hygiene (gstm000): bare directives, and
// directives that suppressed nothing even though every check they name
// ran (an unknown ID counts as "ran" — it can never suppress). A
// directive naming a registered check that was deselected this run is
// given the benefit of the doubt.
func (tr *directiveTracker) warnings(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	warn := func(pos token.Position, format string, args ...any) {
		out = append(out, Diagnostic{Position: pos, Check: hygieneID, Message: fmt.Sprintf(format, args...)})
	}
	for _, d := range tr.all {
		if len(d.ids) == 0 {
			warn(d.pos, "bare //gstm:ignore suppresses nothing: name the check being waived, e.g. //gstm:ignore gstm007 -- justification")
			continue
		}
		if d.used {
			continue
		}
		decided := true
		for _, id := range d.ids {
			c, known := Lookup(id)
			if known && !ran[c.ID()] {
				decided = false // that check did not run; the directive may still be load-bearing
				break
			}
		}
		if decided {
			warn(d.pos, "//gstm:ignore %s suppressed no diagnostic: the finding is gone or the ID is wrong; remove the directive or fix it", strings.Join(d.ids, ", "))
		}
	}
	return out
}

// inspectIgnoringNestedContexts walks body but does not descend into
// nested function literals that are themselves transactional contexts
// (they are analyzed as their own context, avoiding double reports).
func (p *Pass) inspectIgnoringNestedContexts(body ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && n != body {
			if _, _, isCtx := p.txParams(fl.Type); isCtx {
				return false
			}
		}
		return visit(n)
	})
}
