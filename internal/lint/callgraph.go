package lint

// Interprocedural layer: a module-wide view over every package loaded
// into one Run (or one footprint analysis), indexing function bodies
// across package boundaries so checkers can follow call chains out of
// a transaction body into plain helpers.
//
// Static calls (direct function calls and method calls on concrete
// receivers) resolve precisely. Dynamic dispatch — interface methods,
// func values, bound method values — cannot be resolved without a
// whole-program pointer analysis, so it is handled conservatively:
// traversals stop there and the footprint analyzer records the call as
// an *analysis horizon* instead of guessing.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// program is the cross-package view shared by every Pass of one Run.
type program struct {
	pkgs []*Package
	// funcs indexes every function declaration with a body in the
	// loaded packages by its stable key.
	funcs map[string]*funcNode
	// terminals memoizes gstm006's reachable-effect computation.
	terminals map[*funcNode][]effectTerminal
	// summaries memoizes the footprint analyzer's per-function access
	// summaries.
	summaries map[*funcNode]*fpSummary
	// costs memoizes the cost analyzer's per-function estimates.
	costs map[*funcNode]CostEstimate
	// hot memoizes gstm010's module-wide writer index, keyed by storage
	// label (built lazily by hotspots).
	hot map[string]*hotspotInfo
}

// funcNode is one declared function (or method) with its body and the
// package whose type info covers that body.
type funcNode struct {
	key  string
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// name renders the node for diagnostics: Type.Method or funcname.
func (n *funcNode) name() string { return callName(n.fn) }

// funcKey builds a stable cross-package key for fn. Different loads of
// the same package (a lint target with its tests vs the same package
// type-checked as a dependency) produce distinct *types.Func objects
// for the same declaration; the key reconciles them.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			key += "(" + named.Obj().Name() + ")."
		}
	}
	return key + fn.Name()
}

// newProgram indexes every function declaration in pkgs. Earlier
// packages win on key collisions, so callers should list full lint
// targets (loaded with their test files) before dependency packages.
func newProgram(pkgs []*Package) *program {
	pr := &program{
		pkgs:      pkgs,
		funcs:     map[string]*funcNode{},
		terminals: map[*funcNode][]effectTerminal{},
		summaries: map[*funcNode]*fpSummary{},
		costs:     map[*funcNode]CostEstimate{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				key := funcKey(fn)
				if key == "" {
					continue
				}
				if _, dup := pr.funcs[key]; !dup {
					pr.funcs[key] = &funcNode{key: key, fn: fn, decl: fd, pkg: pkg}
				}
			}
		}
	}
	return pr
}

// node resolves a *types.Func (from any package's type info) to the
// indexed declaration, or nil when the body is outside the loaded set.
func (pr *program) node(fn *types.Func) *funcNode {
	if pr == nil || fn == nil {
		return nil
	}
	return pr.funcs[funcKey(fn)]
}

// hasTxParam reports whether fn's signature takes a transaction handle
// — such a function is a transactional context of its own and is
// checked directly (gstm001..), so interprocedural traversals stop at
// it instead of descending.
func hasTxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isTxPointer(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// traversable reports whether an interprocedural walk may descend into
// callee: its body must be loaded, it must not take a transaction
// handle (then it is a context, covered directly), and it must not be
// part of an STM runtime (the runtime legitimately spins and blocks).
func (pr *program) traversable(callee *types.Func) *funcNode {
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	if isSTMImplPackage(callee.Pkg().Path()) {
		return nil
	}
	if hasTxParam(callee) {
		return nil
	}
	if _, isAtomic := atomicMethod(callee); isAtomic {
		return nil
	}
	return pr.node(callee)
}

// atomicSite is one Atomic/AtomicIrrevocable call expression, with the
// static transaction ID argument decoded when it is constant.
type atomicSite struct {
	call *ast.CallExpr
	// body is the transaction-body argument (AtomicCtx shifts it one
	// position right of the Atomic/AtomicIrrevocable layout).
	body ast.Expr
	// closure is the function-literal body argument (nil when the body
	// is passed as a named function or variable).
	closure *ast.FuncLit
	// txLabel renders the static transaction ID for humans: the name of
	// the constant when the argument is a named constant ("TxMove"),
	// the literal value when constant ("2"), "?" otherwise.
	txLabel string
	// txID is the constant transaction ID, -1 when not constant.
	txID int
	// irrevocable marks AtomicIrrevocable sites.
	irrevocable bool
}

// atomicSitesIn finds every Atomic/AtomicCtx call site in pkg
// (skipping STM implementation packages, which host the machinery
// itself). AtomicCtx's leading context argument shifts the transaction
// ID and body one position right.
func atomicSitesIn(pkg *Package) []*atomicSite {
	var sites []*atomicSite
	if isSTMImplPackage(pkg.Path) {
		return nil
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := atomicMethod(pkg.calleeFunc(call))
			if !ok {
				return true
			}
			shift := 0
			if name == "AtomicCtx" {
				shift = 1
			}
			if len(call.Args) < 3+shift {
				return true
			}
			site := &atomicSite{call: call, body: call.Args[2+shift], txLabel: "?", txID: -1, irrevocable: name == "AtomicIrrevocable"}
			if fl, ok := ast.Unparen(site.body).(*ast.FuncLit); ok {
				site.closure = fl
			}
			txArg := ast.Unparen(call.Args[1+shift])
			if tv, ok := pkg.Info.Types[txArg]; ok && tv.Value != nil {
				site.txLabel = tv.Value.ExactString()
				site.txID = -1
				if v, exact := constantInt(tv.Value.ExactString()); exact {
					site.txID = v
				}
			}
			if name := constName(pkg, txArg); name != "" {
				site.txLabel = name
			}
			sites = append(sites, site)
			return true
		})
	}
	return sites
}

// constName returns the name of the named constant an expression
// refers to ("" when it is not a plain constant reference).
func constName(pkg *Package, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	if c, ok := pkg.Info.Uses[id].(*types.Const); ok {
		return c.Name()
	}
	return ""
}

// constantInt parses a decimal constant rendering ("7") into an int.
func constantInt(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	v := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, false
		}
		v = v*10 + int(r-'0')
	}
	return v, true
}

// closureLabels maps each Atomic closure body in pkg to a short label
// for chain diagnostics: the transaction ID ("TxMove", "2") when
// constant, otherwise the enclosing function's name.
func closureLabels(pkg *Package) map[ast.Node]string {
	labels := map[ast.Node]string{}
	for _, site := range atomicSitesIn(pkg) {
		if site.closure == nil {
			continue
		}
		if site.txLabel != "?" {
			labels[site.closure] = "tx " + site.txLabel
		} else if name := enclosingFuncName(pkg, site.call.Pos()); name != "" {
			labels[site.closure] = name
		}
	}
	return labels
}

// enclosingFuncName returns the name of the function declaration
// containing pos ("" at package scope).
func enclosingFuncName(pkg *Package, pos token.Pos) string {
	for _, f := range pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && pos >= fd.Pos() && pos <= fd.End() {
				return fd.Name.Name
			}
		}
	}
	return ""
}
