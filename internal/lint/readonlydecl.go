package lint

// gstm011 unproven-readonly: hand annotations get the same teeth as
// the manifest. A `//gstm:readonly` comment on (or directly above) an
// Atomic/AtomicCtx call declares the author's intent that the site
// never writes transactional storage; this check runs the effect
// inference (effects.go) over the site and reports every declaration
// the analysis cannot prove — including why: the write, the escape,
// or the analysis horizon that blocks the proof. A declaration with
// no Atomic call to attach to is reported too, so a refactor cannot
// silently strand the annotation.

import (
	"go/token"
	"strings"

	"gstm/internal/effect"
)

// readonlyDirective is the annotation comment prefix.
const readonlyDirective = "gstm:readonly"

func init() { Register(readonlyDecl{}) }

type readonlyDecl struct{}

func (readonlyDecl) ID() string   { return "gstm011" }
func (readonlyDecl) Name() string { return "unproven-readonly" }
func (readonlyDecl) Doc() string {
	return "//gstm:readonly declares an Atomic site never writes transactional storage; " +
		"this check reports declarations the interprocedural effect inference cannot prove " +
		"(a reachable write, an escaped handle, or dynamic dispatch the analysis cannot see past), " +
		"and declarations stranded without an Atomic call. Unproven sites are not certified: " +
		"the runtime fast path only trusts manifest entries the analysis stands behind."
}

func (c readonlyDecl) Check(p *Pass) {
	marks := readonlyMarks(p.Pkg)
	if len(marks) == 0 {
		return
	}
	esc := newEscapeIndex(p.prog)
	used := map[token.Position]bool{}
	for _, site := range atomicSitesIn(p.Pkg) {
		pos := p.Fset.Position(site.call.Pos())
		// A directive covers its own line and the line below, like
		// //gstm:ignore.
		var dir token.Position
		var ok bool
		for _, l := range []int{pos.Line, pos.Line - 1} {
			if d, have := marks[lineKey{pos.Filename, l}]; have {
				dir, ok = d, true
				break
			}
		}
		if !ok {
			continue
		}
		used[dir] = true
		if site.irrevocable {
			p.Reportf(site.call.Pos(), "//gstm:readonly on an AtomicIrrevocable site: irrevocable transactions run under global locks and are never certified readonly")
			continue
		}
		if cls, reason := p.prog.classifySite(p.Pkg, site, esc); cls != effect.ReadOnly {
			p.Reportf(site.call.Pos(), "//gstm:readonly declaration cannot be proven: %s", reason)
		}
	}
	seen := map[token.Position]bool{}
	for _, dir := range marks {
		if used[dir] || seen[dir] {
			continue
		}
		seen[dir] = true
		p.ReportAtf(dir, "//gstm:readonly has no Atomic call on this or the next line; the declaration certifies nothing")
	}
}

// isDirective reports whether a comment's text is the named gstm
// directive (with a word boundary, so gstm:readonly does not match a
// hypothetical gstm:readonly2).
func isDirective(text, name string) bool {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
	if !strings.HasPrefix(text, name) {
		return false
	}
	rest := text[len(name):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || strings.HasPrefix(rest, "--")
}

// readonlyMarks collects the package's //gstm:readonly directives,
// keyed by every line they cover (their own and the one below).
func readonlyMarks(pkg *Package) map[lineKey]token.Position {
	marks := map[lineKey]token.Position{}
	for _, f := range pkg.Files {
		tokFile := pkg.Fset.File(f.Pos())
		if tokFile == nil {
			continue
		}
		fname := tokFile.Name()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !isDirective(c.Text, readonlyDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, l := range []int{pos.Line, pos.Line + 1} {
					if _, dup := marks[lineKey{fname, l}]; !dup {
						marks[lineKey{fname, l}] = pos
					}
				}
			}
		}
	}
	return marks
}
