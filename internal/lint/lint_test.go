package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureDirs lists the golden fixture packages: one positive package
// per checker plus the clean negative package.
var fixtureDirs = []string{
	"retryunsafe",
	"txescape",
	"rawvar",
	"nestedatomic",
	"droppederr",
	"transitive",
	"deadread",
	"ctxatomic",
	"unboundedloop",
	"hotspot",
	"hygiene",
	"readonlydecl",
	"clean",
}

// wantRE matches expectation comments: `// want "gstm001" "gstm002"`.
var wantRE = regexp.MustCompile(`want((?:\s+"[^"]+")+)`)

// TestFixtures runs every registered checker over the golden fixture
// packages and matches the diagnostics, line by line, against the
// fixtures' `// want "gstmNNN"` comments — in both directions: an
// unexpected diagnostic fails, and an unmatched expectation fails.
func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var patterns []string
	for _, d := range fixtureDirs {
		patterns = append(patterns, filepath.Join("testdata", "src", d))
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != len(fixtureDirs) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(fixtureDirs))
	}

	// Fixtures must fully type-check: a fixture that does not compile
	// would silently weaken the expectations.
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s does not type-check: %v", pkg.Path, terr)
		}
	}

	// Collect the expectations from the fixtures' want comments.
	type key struct {
		file string
		line int
	}
	want := map[key][]string{}
	total := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range strings.Fields(m[1]) {
						want[key{pos.Filename, pos.Line}] = append(
							want[key{pos.Filename, pos.Line}], strings.Trim(q, `"`))
						total++
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no want expectations found in fixtures")
	}

	for _, d := range Run(pkgs, nil) {
		k := key{d.Position.Filename, d.Position.Line}
		ids := want[k]
		matched := -1
		for i, id := range ids {
			if id == d.Check {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic %s", d)
			continue
		}
		want[k] = append(ids[:matched], ids[matched+1:]...)
	}
	for k, ids := range want {
		for _, id := range ids {
			t.Errorf("%s:%d: expected %s diagnostic, got none", k.file, k.line, id)
		}
	}
}

// TestCleanFixtureIsClean pins the negative guarantee down explicitly:
// the clean package (including its //gstm:ignore'd probe) yields zero
// diagnostics.
func TestCleanFixtureIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "src", "clean"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if diags := Run(pkgs, nil); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("clean fixture produced %s", d)
		}
	}
}

// TestEveryCheckerHasFixtureCoverage enforces the acceptance
// criterion structurally: each registered checker fires at least once
// in the fixture corpus (positive case) and the corpus contains
// negative material it stays silent on.
func TestEveryCheckerHasFixtureCoverage(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var patterns []string
	for _, d := range fixtureDirs {
		patterns = append(patterns, filepath.Join("testdata", "src", d))
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fired := map[string]int{}
	for _, d := range Run(pkgs, nil) {
		fired[d.Check]++
	}
	for _, c := range Checkers() {
		if fired[c.ID()] == 0 {
			t.Errorf("checker %s (%s) never fires on the fixtures", c.ID(), c.Name())
		}
	}
}

// TestRegistry sanity-checks the checker registry surface the CLI
// depends on.
func TestRegistry(t *testing.T) {
	cs := Checkers()
	if len(cs) < 5 {
		t.Fatalf("registered %d checkers, want >= 5", len(cs))
	}
	for i, c := range cs {
		if c.ID() == "" || c.Name() == "" || c.Doc() == "" {
			t.Errorf("checker %d has empty metadata", i)
		}
		if i > 0 && cs[i-1].ID() >= c.ID() {
			t.Errorf("checkers not sorted by ID: %s >= %s", cs[i-1].ID(), c.ID())
		}
		byID, ok := Lookup(c.ID())
		if !ok || byID.ID() != c.ID() {
			t.Errorf("Lookup(%q) failed", c.ID())
		}
		byName, ok := Lookup(c.Name())
		if !ok || byName.ID() != c.ID() {
			t.Errorf("Lookup(%q) failed", c.Name())
		}
	}
	if _, ok := Lookup("no-such-check"); ok {
		t.Error("Lookup of unknown check succeeded")
	}
}

// TestLoaderModuleResolution exercises the module-aware loader
// directly: root detection, wildcard expansion, and in-module import
// resolution through the internal packages.
func TestLoaderModuleResolution(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.ModulePath != "gstm" {
		t.Fatalf("module path = %q, want gstm", loader.ModulePath)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "src", "clean"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pkg := pkgs[0]
	if want := "gstm/internal/lint/testdata/src/clean"; pkg.Path != want {
		t.Fatalf("package path = %q, want %q", pkg.Path, want)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	// The fixture imports the façade package, which imports the
	// internal runtimes: all of it must have resolved from source.
	if pkg.Types.Scope().Lookup("Transfer") == nil {
		t.Fatal("Transfer not found in clean fixture scope")
	}
}

// TestRepoIsLintClean dogfoods the linter over the entire repository —
// the same gate scripts/check.sh enforces pre-merge. Any new
// transaction-safety violation anywhere in the repo fails this test.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint skipped in -short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(loader.ModuleRoot + "/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, d := range Run(pkgs, nil) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestDiagnosticString pins the file:line:col rendering the CLI and
// editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Check: "gstm001", Message: "boom"}
	d.Position.Filename = "x.go"
	d.Position.Line = 3
	d.Position.Column = 7
	if got, want := d.String(), "x.go:3:7: boom [gstm001]"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got := fmt.Sprint(d); !strings.Contains(got, "gstm001") {
		t.Fatalf("Sprint lost the check ID: %q", got)
	}
}
