package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked lint target.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the import path ("<module>/rel/dir"; the pseudo-path
	// "<path>_test" for an external test package).
	Path string
	// Fset is the file set shared by every package from one Loader.
	Fset *token.FileSet
	// Files are the parsed source files (tests included for targets).
	Files []*ast.File
	// Types and Info hold the go/types results.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. Lint results for a
	// package that does not type-check are best-effort.
	TypeErrors []error
	// Dep marks a package loaded only as a dependency of the named
	// targets (see Loader.LoadWithDeps): it completes the module view
	// for call-graph and footprint analyses but is not itself checked.
	Dep bool

	// assigns caches the single-assignment index used by the footprint
	// analyzer's alias tracing (built lazily by assignIndex).
	assigns *assignState
}

// Loader loads module-local packages from source. Imports within the
// module are resolved by mapping import paths onto the module root;
// standard-library imports are type-checked from GOROOT source via
// go/importer's "source" compiler (the stdlib path needs no module
// resolution, so the loader works offline and without x/tools).
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot and ModulePath are the enclosing module's directory
	// and declared path (from go.mod).
	ModuleRoot string
	ModulePath string

	std     types.ImporterFrom
	cache   map[string]*types.Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        std,
		cache:      map[string]*types.Package{},
		loading:    map[string]bool{},
	}, nil
}

// findModule walks upward from dir to the nearest go.mod and returns
// the module directory and declared module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		modFile := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(modFile); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					p := strings.TrimSpace(rest)
					p = strings.Trim(p, `"`)
					if p == "" {
						break
					}
					return d, p, nil
				}
			}
			return "", "", fmt.Errorf("lint: %s has no module directive", modFile)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves the patterns to package directories and returns one
// Package per target (plus one per external test package found). A
// pattern is either a directory or a "dir/..." wildcard; wildcard
// walks skip testdata, vendor and hidden/underscore directories, as
// the go tool does.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := l.loadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// LoadWithDeps loads the patterns as lint targets and then chases
// module-local imports breadth-first, loading every dependency's base
// package (non-test files) with full type info so whole-program
// analyses — the call graph, the footprint analyzer — see function
// bodies across the module even when the user only names an entry
// point. Dependencies are appended after the targets; test files of
// dependencies are deliberately excluded so test-only Atomic sites do
// not pollute footprints of production entry points.
func (l *Loader) LoadWithDeps(patterns ...string) ([]*Package, error) {
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	loaded := map[string]bool{}
	for _, p := range pkgs {
		loaded[p.Path] = true
	}
	queue := append([]*Package{}, pkgs...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
					continue // stdlib: opaque to module analyses
				}
				if loaded[path] {
					continue
				}
				loaded[path] = true
				dir := l.ModuleRoot
				if path != l.ModulePath {
					dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
				}
				base, _, _, err := l.parseDir(dir)
				if err != nil || len(base) == 0 {
					continue // missing dep surfaces as a type error on the importer
				}
				dep := l.check(path, dir, base)
				dep.Dep = true
				pkgs = append(pkgs, dep)
				queue = append(queue, dep)
			}
		}
	}
	return pkgs, nil
}

// expand turns patterns into a sorted, deduplicated list of package
// directories containing Go files.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if strings.HasSuffix(pat, "...") {
			base := strings.TrimSuffix(pat, "...")
			base = strings.TrimSuffix(base, string(filepath.Separator))
			base = strings.TrimSuffix(base, "/")
			if base == "" {
				base = "."
			}
			absBase, err := filepath.Abs(base)
			if err != nil {
				return nil, err
			}
			err = filepath.WalkDir(absBase, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != absBase &&
					(name == "testdata" || name == "vendor" ||
						strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !hasGoFiles(abs) {
			return nil, fmt.Errorf("lint: no Go files in %s", pat)
		}
		add(abs)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses every .go file in dir (comments retained) and
// splits the files into the base package, in-package tests and
// external (_test package) tests.
func (l *Loader) parseDir(dir string) (base, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") &&
			!strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, nil, nil, perr
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			base = append(base, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return base, inTest, extTest, nil
}

// loadDir type-checks dir as a lint target: the base package together
// with its in-package test files, plus (when present) the external
// test package.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	base, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base)+len(inTest) == 0 && len(extTest) == 0 {
		return nil, fmt.Errorf("no buildable Go files")
	}
	var pkgs []*Package
	if files := append(append([]*ast.File{}, base...), inTest...); len(files) > 0 {
		pkgs = append(pkgs, l.check(path, dir, files))
	}
	if len(extTest) > 0 {
		pkgs = append(pkgs, l.check(path+"_test", dir, extTest))
	}
	return pkgs, nil
}

// check runs the type checker over files, tolerating type errors (they
// are recorded on the Package; lint results degrade gracefully).
func (l *Loader) check(path, dir string, files []*ast.File) *Package {
	pkg := &Package{
		Dir:   dir,
		Path:  path,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check records partial results in Info even on error; the error
	// itself is already captured by the Error hook above.
	pkg.Types, _ = conf.Check(path, l.Fset, files, pkg.Info)
	return pkg
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths are
// loaded from source relative to the module root, "unsafe" is the
// canonical unsafe package, everything else goes to the stdlib source
// importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importModule(path)
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// importModule loads a module-local dependency (non-test files only,
// matching how the go tool builds imports) with cycle detection and
// memoization.
func (l *Loader) importModule(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.ModuleRoot
	if path != l.ModulePath {
		dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	base, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var terrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, base, nil)
	if err != nil && pkg == nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}
