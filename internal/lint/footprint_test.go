package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fixturePath is the footprint unit fixture's import path.
const fixturePath = "gstm/internal/lint/testdata/src/footprint"

func loadFootprintFixture(t *testing.T) *ConflictGraph {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "src", "footprint"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fixture does not type-check: %v", terr)
		}
	}
	return Footprint(pkgs, loader.ModuleRoot)
}

// TestFootprintFixture pins the analyzer's core mechanics on the unit
// fixture: parameter and receiver substitution through helpers,
// field-type abstraction, closure capture, and single-assignment alias
// tracing.
func TestFootprintFixture(t *testing.T) {
	g := loadFootprintFixture(t)
	if len(g.Sites) != 2 {
		t.Fatalf("got %d sites, want 2:\n%+v", len(g.Sites), g.Sites)
	}

	run := g.Sites[0]
	if run.Func != "run" || run.TxID != 0 {
		t.Fatalf("site 0 = %s tx %d, want run tx 0", run.Func, run.TxID)
	}
	wantReads := []string{
		fixturePath + ".acct",
		fixturePath + ".audit",
		fixturePath + ".ledger.total",
	}
	wantWrites := []string{
		fixturePath + ".acct",
		fixturePath + ".ledger.total",
	}
	if !reflect.DeepEqual(run.Reads, wantReads) {
		t.Errorf("run reads = %v, want %v", run.Reads, wantReads)
	}
	if !reflect.DeepEqual(run.Writes, wantWrites) {
		t.Errorf("run writes = %v, want %v", run.Writes, wantWrites)
	}
	if len(run.Notes) != 0 {
		t.Errorf("run notes = %v, want none (footprint should be exact)", run.Notes)
	}

	capture := g.Sites[1]
	if capture.Func != "capture" || capture.TxID != 1 {
		t.Fatalf("site 1 = %s tx %d, want capture tx 1", capture.Func, capture.TxID)
	}
	// alias := acct must collapse onto acct; local stays the captured
	// local's identity.
	if want := []string{fixturePath + ".acct"}; !reflect.DeepEqual(capture.Reads, want) {
		t.Errorf("capture reads = %v, want %v", capture.Reads, want)
	}
	if want := []string{fixturePath + ".capture.local"}; !reflect.DeepEqual(capture.Writes, want) {
		t.Errorf("capture writes = %v, want %v", capture.Writes, want)
	}

	// run writes acct, capture reads it: exactly one cross edge (plus
	// the two self edges).
	var cross []ConflictEdge
	for _, e := range g.Edges {
		if e.A != e.B {
			cross = append(cross, e)
		}
	}
	if len(cross) != 1 || cross[0].A != 0 || cross[0].B != 1 ||
		!reflect.DeepEqual(cross[0].Shared, []string{fixturePath + ".acct"}) {
		t.Errorf("cross edges = %+v, want one 0<->1 edge via acct", cross)
	}

	if want := [][2]uint16{{0, 0}, {0, 1}, {1, 1}}; !reflect.DeepEqual(g.TxIDPairs(), want) {
		t.Errorf("TxIDPairs = %v, want %v", g.TxIDPairs(), want)
	}
}

// TestFootprintGolden locks the full report for the repo's real
// workloads against the checked-in golden: the same command the README
// documents (`gstmlint -footprint ./cmd/synquake/... ./examples/...`).
// The golden encodes the paper-relevant facts — TxMove and TxAttack
// are statically disjoint while both conflict with TxScore — so an
// accidental footprint regression (a lost field, a widened set) shows
// up as a diff here.
func TestFootprintGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadWithDeps(
		filepath.Join(loader.ModuleRoot, "cmd", "synquake")+string(filepath.Separator)+"...",
		filepath.Join(loader.ModuleRoot, "examples")+string(filepath.Separator)+"...",
	)
	if err != nil {
		t.Fatalf("LoadWithDeps: %v", err)
	}
	g := Footprint(pkgs, loader.ModuleRoot)

	var buf bytes.Buffer
	g.RenderText(&buf)
	golden, err := os.ReadFile(filepath.Join("testdata", "footprint_golden.txt"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if buf.String() != string(golden) {
		t.Errorf("footprint report drifted from testdata/footprint_golden.txt\n--- got ---\n%s\n--- want ---\n%s", buf.String(), golden)
	}

	// The headline static fact, asserted directly as well so the test
	// fails meaningfully even if the golden is regenerated carelessly:
	// TxMove (0) and TxAttack (1) in internal/synquake never share
	// storage, while TxScore (2) conflicts with both.
	var move, attack, score = -1, -1, -1
	for i, s := range g.Sites {
		if s.Pkg != "gstm/internal/synquake" {
			continue
		}
		switch s.Tx {
		case "TxMove":
			move = i
		case "TxAttack":
			attack = i
		case "TxScore":
			score = i
		}
	}
	if move < 0 || attack < 0 || score < 0 {
		t.Fatalf("synquake sites not all found: move=%d attack=%d score=%d", move, attack, score)
	}
	edge := func(a, b int) bool {
		if a > b {
			a, b = b, a
		}
		for _, e := range g.Edges {
			if e.A == a && e.B == b {
				return true
			}
		}
		return false
	}
	if edge(move, attack) {
		t.Error("TxMove and TxAttack share static footprint — expected disjoint")
	}
	if !edge(move, score) || !edge(attack, score) {
		t.Error("TxScore should conflict with both TxMove and TxAttack")
	}
}

// TestFootprintJSON sanity-checks the JSON rendering round-trips the
// same structure the text report shows.
func TestFootprintJSON(t *testing.T) {
	g := loadFootprintFixture(t)
	var buf bytes.Buffer
	if err := g.RenderJSON(&buf); err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	for _, want := range []string{`"file"`, `"reads"`, `"writes"`, fixturePath + ".acct"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("JSON output missing %s:\n%s", want, buf.String())
		}
	}
}
