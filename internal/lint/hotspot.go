package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

func init() { Register(hotspotVar{}) }

// DefaultHotspotWriters is gstm010's threshold: storage written by at
// least this many distinct transaction sites is reported.
const DefaultHotspotWriters = 3

// hotspotVar is gstm010: transactional storage written by many
// distinct transaction sites.
//
// The guide can reorder and hold transactions, but it cannot remove a
// data dependence: a Var (or container, or field) sitting in the
// may-write set of many Atomic sites serializes all of them — every
// pair of those sites is an abort edge in the static conflict graph,
// and at runtime the word becomes the workload's commit bottleneck
// regardless of how admissions are scheduled. That is a design smell
// best seen before any profile exists, so the check runs on the same
// module-wide footprint index the prior synthesizer uses and reports
// at the storage *declaration* (one finding per hotspot, not one per
// writer). Deliberate hot counters are suppressed at the declaration
// with `//gstm:ignore gstm010 -- why`.
type hotspotVar struct{}

func (hotspotVar) ID() string   { return "gstm010" }
func (hotspotVar) Name() string { return "conflict-hotspot" }
func (hotspotVar) Doc() string {
	return fmt.Sprintf("flags transactional storage written by >= %d distinct Atomic sites "+
		"(per the static conflict footprints): such a word serializes every writer and "+
		"becomes the commit bottleneck no admission schedule can fix; shard the storage "+
		"or document the intent with //gstm:ignore gstm010", DefaultHotspotWriters)
}

// hotspotInfo aggregates the distinct writer sites of one concrete
// storage root across the whole Run.
type hotspotInfo struct {
	label string
	decl  token.Position
	// writers are distinct site positions, rendered "path:line".
	writers map[string]bool
}

// hotspots builds (and memoizes) the module-wide writer index over
// every non-test Atomic site of the Run.
func (pr *program) hotspots() map[string]*hotspotInfo {
	if pr.hot != nil {
		return pr.hot
	}
	pr.hot = map[string]*hotspotInfo{}
	for _, pkg := range pr.pkgs {
		for _, site := range atomicSitesIn(pkg) {
			pos := pkg.Fset.Position(site.call.Pos())
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			fp := pr.siteFootprint(pkg, site)
			siteKey := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			for _, a := range fp.accs {
				if !a.write || a.root.kind != fpConcrete || a.root.decl.Filename == "" {
					continue
				}
				h := pr.hot[a.root.label]
				if h == nil {
					h = &hotspotInfo{label: a.root.label, decl: a.root.decl, writers: map[string]bool{}}
					pr.hot[a.root.label] = h
				}
				h.writers[siteKey] = true
			}
		}
	}
	return pr.hot
}

func (c hotspotVar) Check(p *Pass) {
	if p.prog == nil || isSTMImplPackage(p.Pkg.Path) {
		return
	}
	// Report each hotspot once, at its declaration, from the package
	// pass that owns the declaring file.
	owned := map[string]bool{}
	for _, f := range p.Pkg.Files {
		if tf := p.Fset.File(f.Pos()); tf != nil {
			owned[tf.Name()] = true
		}
	}
	var hots []*hotspotInfo
	for _, h := range p.prog.hotspots() {
		if len(h.writers) >= DefaultHotspotWriters && owned[h.decl.Filename] {
			hots = append(hots, h)
		}
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].label < hots[j].label })
	for _, h := range hots {
		sites := make([]string, 0, len(h.writers))
		for s := range h.writers {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		shown := make([]string, 0, 3)
		for _, s := range sites {
			if len(shown) == 3 {
				break
			}
			if i := strings.LastIndex(s, string(filepath.Separator)); i >= 0 {
				s = s[i+1:]
			}
			shown = append(shown, s)
		}
		more := ""
		if len(sites) > len(shown) {
			more = ", ..."
		}
		p.ReportAtf(h.decl, "transactional storage %s is written by %d distinct transaction sites (%s%s): every pair is a static abort edge, so this word serializes the workload's commits; shard it or document the bottleneck with //gstm:ignore gstm010", h.label, len(sites), strings.Join(shown, ", "), more)
	}
}
