package lint

import (
	"go/ast"
)

func init() { Register(unboundedLoop{}) }

// unboundedLoop is gstm009: a statically-unbounded loop inside a
// transaction body.
//
// A transaction body re-executes under retry and, in TL2, validates
// its whole read set at commit; a loop with no static bound — no
// three-clause condition, no break/return escaping it, no condition
// term the body updates — can only leave through a panic or through
// the transactional snapshot changing underneath it. Spinning on
// transactional state inside a transaction is the classic STM livelock
// shape: the spin widens the read set every iteration, the eventual
// conflicting commit aborts the whole attempt, and the retry starts
// the spin over. With deadlines (AtomicCtx) the loop burns the entire
// budget; without them it can wedge a thread and starve the commit
// gate. The loop classifier is shared with the static cost analyzer
// (cost.go), which charges such loops a large trip multiplier.
type unboundedLoop struct{}

func (unboundedLoop) ID() string   { return "gstm009" }
func (unboundedLoop) Name() string { return "unbounded-loop" }
func (unboundedLoop) Doc() string {
	return "flags statically-unbounded loops inside transaction bodies (no bound, no " +
		"escaping break/return, no condition term updated in the body): under retry such " +
		"a loop livelocks or exhausts any deadline; bound it, add an escape, or move the " +
		"wait outside the transaction"
}

func (c unboundedLoop) Check(p *Pass) {
	for _, ctx := range p.STMContexts() {
		kind := "transaction"
		if !ctx.retryable {
			kind = "irrevocable transaction"
		}
		p.inspectIgnoringNestedContexts(ctx.body, func(n ast.Node) bool {
			f, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if _, unbounded := classifyFor(p.Pkg, f); unbounded {
				p.Reportf(f.Pos(), "statically unbounded loop in a %s body: nothing bounds it or escapes it, so it can livelock the attempt or exhaust any deadline; bound the loop or move the wait outside the transaction", kind)
			}
			return true
		})
	}
}
