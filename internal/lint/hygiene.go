package lint

func init() { Register(ignoreHygiene{}) }

// ignoreHygiene is gstm000: //gstm:ignore directive hygiene.
//
// A suppression directive is a standing waiver — it keeps silencing
// whatever appears on its line forever, long after the finding it was
// written for is fixed. Two failure modes make waivers rot: a bare
// //gstm:ignore (no check ID) would blanket-suppress every current and
// future check on the line, and a directive whose named checks all ran
// but suppressed nothing is dead weight that will silently swallow the
// next, unrelated finding at the same position. gstm000 reports both.
//
// Unlike the other checks, gstm000 has no per-package walk of its own:
// Run drives it from the suppression bookkeeping after all packages
// have been filtered (the directive usage is only known then), so
// Check is a no-op. Its diagnostics cannot themselves be suppressed —
// a //gstm:ignore gstm000 would be exactly the rot being reported.
type ignoreHygiene struct{}

func (ignoreHygiene) ID() string   { return "gstm000" }
func (ignoreHygiene) Name() string { return "ignore-hygiene" }
func (ignoreHygiene) Doc() string {
	return "flags //gstm:ignore directives that suppress nothing: bare directives without " +
		"a check ID (explicit IDs are required), and directives whose named checks ran " +
		"but found nothing on the line — stale waivers would silently swallow the next " +
		"finding; remove or correct them"
}

// Check is a no-op: Run reports gstm000 findings from the directive
// tracker once every package's suppression has been applied.
func (ignoreHygiene) Check(*Pass) {}
