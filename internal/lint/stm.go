package lint

// STM awareness: the helpers shared by every checker for recognizing
// the repo's transactional types and the source regions that execute
// inside transactions.
//
// A *transactional context* is any function — declaration or literal —
// with a parameter of type *tl2.Tx, *libtm.Tx (retryable) or
// *tl2.IrrevTx (irrevocable). Tx handles are only valid inside Atomic
// bodies, so a function that receives one can only ever run inside a
// transaction; this catches both the closure passed to Atomic and
// every helper it calls with the handle (e.g. collection methods in
// workload packages).

import (
	"go/ast"
	"go/types"
	"strings"
)

// isSTMPackagePath reports whether path is one of the packages that
// define the STM runtime types (the root façade re-exports them as
// aliases, which resolve to the same named types).
func isSTMPackagePath(path string) bool {
	return path == "gstm" ||
		strings.HasSuffix(path, "/internal/tl2") ||
		strings.HasSuffix(path, "/internal/libtm")
}

// isSTMImplPackage reports whether path is an STM *implementation*
// package. The runtime itself legitimately spins, sleeps, locks and
// touches raw words, so transaction-body checks skip it.
func isSTMImplPackage(path string) bool {
	return strings.HasSuffix(path, "/internal/tl2") ||
		strings.HasSuffix(path, "/internal/libtm")
}

// namedSTMType unwraps pointers and aliases and, if t is a named type
// declared in an STM package, returns its name.
func namedSTMType(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !isSTMPackagePath(obj.Pkg().Path()) {
		return "", false
	}
	return obj.Name(), true
}

// isTxType reports whether t is a transaction-handle type, and whether
// the handle is retryable (Tx) or irrevocable (IrrevTx).
func isTxType(t types.Type) (retryable, ok bool) {
	switch name, isSTM := namedSTMType(t); {
	case !isSTM:
		return false, false
	case name == "Tx":
		return true, true
	case name == "IrrevTx":
		return false, true
	}
	return false, false
}

// isTxPointer reports whether t is *Tx or *IrrevTx specifically (the
// form transaction handles are passed around in).
func isTxPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	_, ok := isTxType(t)
	return ok
}

// stmDataTypes are the transactional data types whose raw (non-tx)
// accessors bypass the read/write sets.
var stmDataTypes = map[string]bool{
	"Var":   true, // tl2 word
	"Array": true, // tl2 word sequence
	"Map":   true, // tl2 hash table
	"Queue": true, // tl2 FIFO
	"Obj":   true, // libtm object
}

// isSTMDataType reports whether t (pointer or value) is one of the
// transactional containers, returning its name.
func isSTMDataType(t types.Type) (string, bool) {
	name, ok := namedSTMType(t)
	if !ok || !stmDataTypes[name] {
		return "", false
	}
	return name, true
}

// atomicMethod reports whether fn is STM.Atomic, STM.AtomicCtx or
// STM.AtomicIrrevocable from one of the STM runtimes.
func atomicMethod(fn *types.Func) (name string, ok bool) {
	if fn == nil {
		return "", false
	}
	if fn.Name() != "Atomic" && fn.Name() != "AtomicCtx" && fn.Name() != "AtomicIrrevocable" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if recvName, isSTM := namedSTMType(sig.Recv().Type()); !isSTM || recvName != "STM" {
		return "", false
	}
	return fn.Name(), true
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (nil for builtins, calls of function values, and type conversions).
func (pkg *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	return p.Pkg.calleeFunc(call)
}

// calleeBuiltin resolves a call to the builtin it invokes ("" if the
// callee is not a builtin).
func (pkg *Package) calleeBuiltin(call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func (p *Pass) calleeBuiltin(call *ast.CallExpr) string {
	return p.Pkg.calleeBuiltin(call)
}

// txContext is one function body that executes inside a transaction.
type txContext struct {
	// fn is the *ast.FuncDecl or *ast.FuncLit.
	fn ast.Node
	// body is the function body.
	body *ast.BlockStmt
	// retryable is true for *Tx contexts (the body may re-execute),
	// false for *IrrevTx (runs exactly once but holds global locks).
	retryable bool
	// txObjs are the declared transaction-handle parameters.
	txObjs map[types.Object]bool
}

// txParams scans a function type's parameters for transaction handles.
func (p *Pass) txParams(ft *ast.FuncType) (objs []*ast.Ident, retryable bool, isCtx bool) {
	if ft == nil || ft.Params == nil {
		return nil, false, false
	}
	for _, field := range ft.Params.List {
		var t types.Type
		if tv, ok := p.Pkg.Info.Types[field.Type]; ok {
			t = tv.Type
		}
		if t == nil {
			continue
		}
		r, ok := isTxType(t)
		if !ok {
			continue
		}
		if _, isPtr := t.(*types.Pointer); !isPtr {
			continue
		}
		isCtx = true
		retryable = retryable || r
		objs = append(objs, field.Names...)
	}
	return objs, retryable, isCtx
}

// STMContexts returns the package's transactional contexts, cached
// across checkers. Implementation packages (the STM runtimes
// themselves) yield none.
func (p *Pass) STMContexts() []*txContext {
	if p.contexts != nil && *p.contexts != nil {
		return *p.contexts
	}
	ctxs := []*txContext{}
	if !isSTMImplPackage(p.Pkg.Path) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var ft *ast.FuncType
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					ft, body = fn.Type, fn.Body
				case *ast.FuncLit:
					ft, body = fn.Type, fn.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				ids, retryable, isCtx := p.txParams(ft)
				if !isCtx {
					return true
				}
				objs := map[types.Object]bool{}
				for _, id := range ids {
					if obj := p.Pkg.Info.Defs[id]; obj != nil {
						objs[obj] = true
					}
				}
				ctxs = append(ctxs, &txContext{fn: n, body: body, retryable: retryable, txObjs: objs})
				return true // nested literals become their own contexts
			})
		}
	}
	if p.contexts != nil {
		*p.contexts = ctxs
	}
	return ctxs
}

// usesTxObj reports whether expr mentions one of ctx's transaction
// handles (directly or inside a nested literal).
func (p *Pass) usesTxObj(ctx *txContext, expr ast.Node) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.Uses[id] != nil && ctx.txObjs[p.Pkg.Info.Uses[id]] {
			found = true
			return false
		}
		return !found
	})
	return found
}

// exprType returns the static type of e (nil when type checking failed
// to produce one).
func (pkg *Package) exprType(e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (p *Pass) exprType(e ast.Expr) types.Type {
	return p.Pkg.exprType(e)
}
