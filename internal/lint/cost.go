package lint

// Static commit-cost estimation: the compile-time analogue of the
// per-transaction work the runtime's commit path has to validate.
//
// The prior synthesizer (prior.go) needs to know not only *which*
// transactions conflict but how *expensive* each one is to commit: a
// transaction touching many words holds locks longer, validates a
// larger read set and is therefore a worse neighbour to admit
// concurrently. This file estimates that cost statically, reusing the
// footprint analyzer's call-graph propagation (helper bodies are
// folded in; an access behind a helper call costs the same as an
// inline one) and weighting accesses by loop nesting: an access inside
// a loop is multiplied by the loop's estimated trip count — exact for
// constant three-clause loops (clamped), a fixed guess for ranges and
// data-dependent bounds, and a large penalty for loops with no static
// bound at all. The loop classifier is shared with gstm009, which
// flags the statically-unbounded case as a deadline/livelock risk in
// its own right.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
)

// CostEstimate is the static commit-cost estimate of one Atomic site
// or helper body: loop-weighted may-read and may-write counts, plus
// the number of statically-unbounded loops encountered (each already
// contributes unboundedLoopTrip to the weights; the count is kept so
// callers can surface the risk separately).
type CostEstimate struct {
	Reads          float64 `json:"reads"`
	Writes         float64 `json:"writes"`
	UnboundedLoops int     `json:"unboundedLoops,omitempty"`
}

// Commit folds the estimate into a single scalar: a write costs twice
// a read (it is validated *and* locked/written back at commit), plus a
// constant for the commit machinery itself, so even an empty
// transaction has nonzero cost.
func (c CostEstimate) Commit() float64 { return 1 + c.Reads + 2*c.Writes }

// String renders the estimate for the footprint report.
func (c CostEstimate) String() string {
	s := fmt.Sprintf("reads~%.1f writes~%.1f commit~%.1f", c.Reads, c.Writes, c.Commit())
	if c.UnboundedLoops == 1 {
		s += " (1 statically-unbounded loop)"
	} else if c.UnboundedLoops > 1 {
		s += fmt.Sprintf(" (%d statically-unbounded loops)", c.UnboundedLoops)
	}
	return s
}

// Loop-trip heuristics. defaultLoopTrip is the guess for loops whose
// bound is real but not statically known (ranges, data-dependent
// conditions); unboundedLoopTrip penalizes loops with no static bound
// at all; maxConstTrip clamps constant trip counts so one `for i := 0;
// i < 1e6` does not drown every other signal; maxLoopMult caps the
// total nesting multiplier.
const (
	defaultLoopTrip   = 8
	unboundedLoopTrip = 32
	maxConstTrip      = 64
	maxLoopMult       = 4096
)

func capMult(m float64) float64 {
	if m > maxLoopMult {
		return maxLoopMult
	}
	return m
}

// maxCostEstimate saturates the accumulated access counts. capMult
// bounds one body's own loop nesting at maxLoopMult, but helper-call
// folding multiplies the *callee's whole estimate* by the caller's
// multiplier, so clamped-at-64 loops nested across helper boundaries
// still compound by 64 per level — deep enough chains used to run the
// float estimate off to +Inf and wreck the prior's weight arithmetic.
// Saturating each accumulation keeps estimates finite and monotonic;
// past this point "enormous" carries no extra signal anyway.
const maxCostEstimate = 1 << 20

func satCost(x float64) float64 {
	if x > maxCostEstimate {
		return maxCostEstimate
	}
	return x
}

// siteCost computes the loop-weighted cost estimate of one Atomic
// site, mirroring siteFootprint's traversal (same closure/function
// resolution, same nested-site exclusion).
func (pr *program) siteCost(pkg *Package, site *atomicSite) CostEstimate {
	var est CostEstimate
	if site.closure == nil {
		if fn, ok := resolveFuncRef(pkg, site.body); ok {
			if node := pr.node(fn); node != nil {
				est = pr.funcCost(node, map[*funcNode]bool{})
			}
		}
		return est
	}
	nested := nestedAtomicClosures(pkg, site.closure)
	pr.costWalk(pkg, site.closure.Body, 1, &est, map[*funcNode]bool{}, nested)
	return est
}

// nestedAtomicClosures returns the closure bodies of every *other*
// Atomic site in pkg, so a site-level walk does not absorb nested
// sites (they are analyzed separately).
func nestedAtomicClosures(pkg *Package, self *ast.FuncLit) map[ast.Node]bool {
	nested := map[ast.Node]bool{}
	for _, other := range atomicSitesIn(pkg) {
		if other.closure != nil && other.closure != self {
			nested[other.closure] = true
		}
	}
	return nested
}

// funcCost computes (and memoizes) a declared function's cost
// estimate. Unlike footprint summaries, costs are parameter-free pure
// counts, so call sites fold them in without substitution.
func (pr *program) funcCost(node *funcNode, visiting map[*funcNode]bool) CostEstimate {
	if c, done := pr.costs[node]; done {
		return c
	}
	if visiting[node] {
		return CostEstimate{} // recursion: one unrolling is already counted at the caller
	}
	visiting[node] = true
	defer delete(visiting, node)
	var est CostEstimate
	pr.costWalk(node.pkg, node.decl.Body, 1, &est, visiting, nil)
	pr.costs[node] = est
	return est
}

// costWalk accumulates accesses under n into est, scaled by mult.
// Loops multiply the scale for their bodies; calls contribute either a
// primitive access or a callee's whole estimate.
func (pr *program) costWalk(pkg *Package, n ast.Node, mult float64, est *CostEstimate, visiting map[*funcNode]bool, skip map[ast.Node]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if skip != nil && skip[m] {
			return false
		}
		switch s := m.(type) {
		case *ast.ForStmt:
			trip, unbounded := classifyFor(pkg, s)
			if unbounded {
				est.UnboundedLoops++
			}
			inner := capMult(mult * trip)
			if s.Init != nil {
				pr.costWalk(pkg, s.Init, mult, est, visiting, skip)
			}
			if s.Cond != nil {
				pr.costWalk(pkg, s.Cond, inner, est, visiting, skip)
			}
			if s.Post != nil {
				pr.costWalk(pkg, s.Post, inner, est, visiting, skip)
			}
			pr.costWalk(pkg, s.Body, inner, est, visiting, skip)
			return false
		case *ast.RangeStmt:
			if s.X != nil {
				pr.costWalk(pkg, s.X, mult, est, visiting, skip)
			}
			pr.costWalk(pkg, s.Body, capMult(mult*defaultLoopTrip), est, visiting, skip)
			return false
		case *ast.CallExpr:
			pr.costCall(pkg, s, mult, est, visiting)
			return true // still descend: arguments may contain reads
		}
		return true
	})
}

// costCall classifies one call the way footprintCall does, but
// accumulates weighted counts instead of labeled accesses.
func (pr *program) costCall(pkg *Package, call *ast.CallExpr, mult float64, est *CostEstimate, visiting map[*funcNode]bool) {
	if pkg.calleeBuiltin(call) != "" {
		return
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // type conversion
	}
	fn := pkg.calleeFunc(call)
	if fn == nil {
		return // dynamic call: the footprint side already records the horizon
	}
	if ops, ok := stmPrimitive(pkg, fn, call); ok {
		for _, op := range ops {
			if op.write {
				est.Writes = satCost(est.Writes + mult)
			} else {
				est.Reads = satCost(est.Reads + mult)
			}
		}
		return
	}
	if fn.Pkg() != nil && !isSTMPackagePath(fn.Pkg().Path()) {
		if node := pr.node(fn); node != nil {
			c := pr.funcCost(node, visiting)
			est.Reads = satCost(est.Reads + mult*c.Reads)
			est.Writes = satCost(est.Writes + mult*c.Writes)
			est.UnboundedLoops += c.UnboundedLoops
		}
	}
}

// ---- loop classification (shared with gstm009) ----

// classifyFor estimates a for statement's trip count and reports
// whether the loop is statically unbounded: no three-clause bound, no
// break/return/goto escaping it, and no condition term updated in the
// body. Such a loop can only terminate through a panic or through the
// transactional snapshot changing under it — inside an Atomic body
// that is a deadline/livelock hazard (gstm009).
func classifyFor(pkg *Package, f *ast.ForStmt) (trip float64, unbounded bool) {
	if f.Init != nil && f.Cond != nil && f.Post != nil {
		if n, ok := constTrip(pkg, f); ok {
			if n > maxConstTrip {
				n = maxConstTrip
			}
			if n < 0 {
				n = 0
			}
			return float64(n), false
		}
		return defaultLoopTrip, false
	}
	if loopEscapes(f.Body) {
		return defaultLoopTrip, false
	}
	if f.Cond != nil && condMayVary(pkg, f) {
		return defaultLoopTrip, false
	}
	return unboundedLoopTrip, true
}

// loopEscapes reports whether body contains a statement that exits the
// enclosing loop: a return, a goto, a labeled break, or an unlabeled
// break not captured by a nested loop/switch/select. Nested function
// literals are opaque (their returns do not exit this loop).
func loopEscapes(body ast.Node) bool {
	found := false
	var visit func(n ast.Node, captured bool)
	visit = func(n ast.Node, captured bool) {
		if found || n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if m == n {
				return true
			}
			switch s := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				visit(s, true)
				return false
			case *ast.ReturnStmt:
				found = true
				return false
			case *ast.BranchStmt:
				switch s.Tok {
				case token.BREAK:
					// A labeled break may target an outer construct; treat
					// it as an escape (conservative: fewer reports).
					if s.Label != nil || !captured {
						found = true
					}
				case token.GOTO:
					found = true
				}
				return false
			}
			return true
		})
	}
	visit(body, false)
	return found
}

// condMayVary reports whether the loop condition can plausibly change
// across iterations: a condition term is assigned in the body, or the
// condition calls something other than a read-only transactional
// primitive (snapshot reads repeat the same answer inside one attempt;
// any other call might not), or it receives from a channel.
func condMayVary(pkg *Package, f *ast.ForStmt) bool {
	varies := false
	ast.Inspect(f.Cond, func(n ast.Node) bool {
		if varies {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				varies = true // channel receive
				return false
			}
		case *ast.CallExpr:
			if pkg.calleeBuiltin(n) != "" {
				return true // len/cap of a term judged by its idents
			}
			fn := pkg.calleeFunc(n)
			if fn == nil {
				varies = true // dynamic call: unknown
				return false
			}
			if ops, ok := stmPrimitive(pkg, fn, n); ok {
				for _, op := range ops {
					if op.write {
						varies = true // e.g. Pop in the condition
						return false
					}
				}
				return true // pure snapshot read: stable within an attempt
			}
			varies = true // arbitrary call: may observe anything
			return false
		}
		return true
	})
	if varies {
		return true
	}
	// Condition terms assigned in the body (including inside nested
	// closures — conservatively assume those run).
	terms := map[string]bool{}
	ast.Inspect(f.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name != "_" {
			terms[id.Name] = true
		}
		return true
	})
	assigned := false
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && terms[id.Name] {
				assigned = true
			}
			return !assigned
		})
	}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if assigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X) // address taken: may be written elsewhere
			}
		}
		return true
	})
	return assigned
}

// constTrip recognizes the constant three-clause pattern
// `for i := c0; i <op> c1; i++/i--/i += k` and returns its exact trip
// count.
func constTrip(pkg *Package, f *ast.ForStmt) (int, bool) {
	init, ok := f.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return 0, false
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return 0, false
	}
	c0, ok := constIntVal(pkg, init.Rhs[0])
	if !ok {
		return 0, false
	}
	cond, ok := f.Cond.(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	var bound int64
	var op token.Token
	if x, isID := cond.X.(*ast.Ident); isID && x.Name == id.Name {
		bound, ok = constIntVal(pkg, cond.Y)
		op = cond.Op
	} else if y, isID := cond.Y.(*ast.Ident); isID && y.Name == id.Name {
		bound, ok = constIntVal(pkg, cond.X)
		// Flip `c1 > i` into `i < c1` etc.
		switch cond.Op {
		case token.GTR:
			op = token.LSS
		case token.GEQ:
			op = token.LEQ
		case token.LSS:
			op = token.GTR
		case token.LEQ:
			op = token.GEQ
		default:
			return 0, false
		}
	} else {
		return 0, false
	}
	if !ok {
		return 0, false
	}
	step := int64(0)
	switch post := f.Post.(type) {
	case *ast.IncDecStmt:
		if pid, isID := post.X.(*ast.Ident); isID && pid.Name == id.Name {
			if post.Tok == token.INC {
				step = 1
			} else {
				step = -1
			}
		}
	case *ast.AssignStmt:
		if len(post.Lhs) == 1 && len(post.Rhs) == 1 {
			if pid, isID := post.Lhs[0].(*ast.Ident); isID && pid.Name == id.Name {
				if k, kok := constIntVal(pkg, post.Rhs[0]); kok {
					switch post.Tok {
					case token.ADD_ASSIGN:
						step = k
					case token.SUB_ASSIGN:
						step = -k
					}
				}
			}
		}
	}
	if step == 0 {
		return 0, false
	}
	var span int64
	switch {
	case (op == token.LSS || op == token.LEQ) && step > 0:
		span = bound - c0
		if op == token.LEQ {
			span++
		}
	case (op == token.GTR || op == token.GEQ) && step < 0:
		span = c0 - bound
		if op == token.GEQ {
			span++
		}
		step = -step
	default:
		return 0, false
	}
	if span <= 0 {
		return 0, true
	}
	return int((span + step - 1) / step), true
}

// constIntVal evaluates e to an integer constant via the type info.
func constIntVal(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}
