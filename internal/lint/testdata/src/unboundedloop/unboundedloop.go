// Package unboundedloop exercises gstm009: loops inside transaction
// bodies with no static bound, no escape, and no condition term the
// body can change — they can only end through a panic or the snapshot
// shifting under the attempt, which is a livelock/deadline hazard.
package unboundedloop

import (
	"gstm"
	"gstm/internal/tl2"
)

func positives(s *gstm.STM, v, done *gstm.Var) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		for { // want "gstm009"
			tx.Write(v, tx.Read(v)+1)
		}
	})
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		// The classic STM spin: a snapshot read repeats the same answer
		// within one attempt, so this waits forever inside the body.
		for tx.Read(done) == 0 { // want "gstm009"
			tx.Write(v, 1)
		}
		return nil
	})
}

func positiveIrrevocable(s *gstm.STM, done *gstm.Var) {
	_ = s.AtomicIrrevocable(0, 2, func(tx *tl2.IrrevTx) error {
		for tx.Read(done) == 0 { // want "gstm009"
		}
		return nil
	})
}

func negatives(s *gstm.STM, v, done *gstm.Var, q *gstm.Queue, xs []int64) {
	_ = s.Atomic(0, 3, func(tx *gstm.Tx) error {
		// Constant three-clause bound.
		for i := 0; i < 8; i++ {
			tx.Write(v, int64(i))
		}
		// Range loops are bounded by their operand.
		for _, x := range xs {
			tx.Write(v, x)
		}
		// An escape bounds the loop even without a condition.
		for {
			if tx.Read(done) != 0 {
				break
			}
			return nil
		}
		// The body updates a condition term.
		left := tx.Read(v)
		for left > 0 {
			left--
		}
		// The condition consumes capacity (Push writes), so it varies.
		for q.Push(tx, 1) {
		}
		return nil
	})
}

func ignored(s *gstm.STM, done *gstm.Var) {
	_ = s.Atomic(0, 4, func(tx *gstm.Tx) error {
		//gstm:ignore gstm009 -- demo waiver, the schedule guarantees done flips
		for tx.Read(done) == 0 {
		}
		return nil
	})
}
