// Package ignore exercises the //gstm:ignore directive's edge cases:
// a standalone directive above a multi-line statement, mixed valid and
// bogus IDs in one directive, and a directive whose IDs do not match
// the diagnostic (which must survive).
package ignore

import (
	"fmt"

	"gstm"
)

func cases(s *gstm.STM, v *gstm.Var) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		// Standalone directive: applies to the line below, where the
		// multi-line statement starts.
		//gstm:ignore gstm001 -- demo output, duplication under retry accepted
		fmt.Println(
			tx.Read(v),
		)
		// Mixed validity: the unknown ID is inert, gstm007 still applies.
		tx.Read(v) //gstm:ignore gstm007, bogus999 -- deliberate widening demo
		// Non-matching ID: the diagnostic must survive. Line 24.
		tx.Read(v) //gstm:ignore bogus999 -- wrong id, must not suppress
		tx.Write(v, 1)
		return nil
	})
}
