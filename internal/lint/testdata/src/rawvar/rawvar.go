// Package rawvar exercises gstm003: bypassing the read/write sets.
package rawvar

import (
	"gstm"
	"gstm/internal/libtm"
	"gstm/internal/tl2"
)

func positives(s *gstm.STM, v *gstm.Var, a *gstm.Array, o *libtm.Obj) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		x := v.Value()     // want "gstm003"
		v.Store(x + 1)     // want "gstm003"
		_ = a.Snapshot()   // want "gstm003"
		_ = o.Value()      // want "gstm003"
		o.StoreFloat(1.5)  // want "gstm003"
		_ = v.FloatValue() // want "gstm003"
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
}

// helper runs inside a transaction (it has the handle), so raw
// accessors are just as wrong here.
func helper(tx *tl2.Tx, v *tl2.Var) {
	v.Store(tx.Read(v)) // want "gstm003"
}

// copies shows the by-value hazards, flagged even outside
// transactions: a copied Var carries its own lock and version word.
func copies(src *tl2.Var, vars []tl2.Var) {
	shadow := *src // want "gstm003"
	_ = shadow
	for _, v := range vars { // want "gstm003"
		_ = v
	}
}

// negatives: raw accessors are the documented setup/verification API
// outside transactions, and indexed iteration does not copy.
func negatives(s *gstm.STM, vars []tl2.Var) {
	v := gstm.NewVar(3)
	v.Store(40)
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		tx.Write(v, tx.Read(v)+2)
		return nil
	})
	if v.Value() != 42 {
		panic("lost update")
	}
	for i := range vars {
		_ = vars[i].Value()
	}
}
