// Package nestedatomic exercises gstm004: transactions started inside
// transaction bodies.
package nestedatomic

import (
	"gstm"
	"gstm/internal/tl2"
)

func positives(s *gstm.STM, v, w *gstm.Var) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		tx.Write(v, tx.Read(v)+1)
		return s.Atomic(0, 1, func(inner *gstm.Tx) error { // want "gstm004"
			inner.Write(w, inner.Read(w)+1)
			return nil
		})
	})
	_ = s.AtomicIrrevocable(0, 0, func(tx *tl2.IrrevTx) error {
		_ = s.Atomic(0, 1, func(inner *gstm.Tx) error { // want "gstm004"
			inner.Write(w, inner.Read(w)+1)
			return nil
		})
		return nil
	})
}

// helper can only run inside a transaction; starting another one from
// here is the same flat-nesting hazard.
func helper(tx *tl2.Tx, s *tl2.STM, v *tl2.Var) {
	_ = s.AtomicIrrevocable(0, 2, func(inner *tl2.IrrevTx) error { // want "gstm004"
		inner.Write(v, 1)
		return nil
	})
}

// negatives: sequential transactions compose fine, as does calling a
// transactional helper with the current handle.
func addOne(tx *gstm.Tx, v *gstm.Var) { tx.Write(v, tx.Read(v)+1) }

func negatives(s *gstm.STM, v, w *gstm.Var) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		addOne(tx, v)
		return nil
	})
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		addOne(tx, w)
		return nil
	})
}
