// Package hygiene exercises gstm000: ignore directives that suppress
// nothing. A bare directive (no check ID) never suppresses, and a
// directive whose named checks all ran but matched nothing is a stale
// waiver that would silently swallow the next finding on its line.
package hygiene

import "gstm"

func cases(s *gstm.STM, v *gstm.Var) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		// Bare directive: suppresses nothing, so the dead read survives
		// alongside the hygiene warning.
		tx.Read(v) //gstm:ignore -- bare; want "gstm000" "gstm007"
		// Stale directive: gstm003 ran but has no finding here.
		x := tx.Read(v) //gstm:ignore gstm003 -- stale; want "gstm000"
		// Healthy directive: names the check it actually suppresses.
		tx.Read(v) //gstm:ignore gstm007 -- deliberate widening demo
		tx.Write(v, x)
		return nil
	})
}
