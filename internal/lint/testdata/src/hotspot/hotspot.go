// Package hotspot exercises gstm010: transactional storage sitting in
// the may-write set of many distinct Atomic sites. The finding is
// reported once, at the storage declaration, not at each writer.
package hotspot

import "gstm"

// counter is written by three distinct transaction sites below: every
// pair of them is a static abort edge.
var counter = gstm.NewVar(0) // want "gstm010"

// spread is written by only two sites and stays below the threshold.
var spread = gstm.NewVar(0)

// waived is just as hot as counter but documented as deliberate.
//
//gstm:ignore gstm010 -- demo: hot counter kept on purpose
var waived = gstm.NewVar(0)

func siteA(s *gstm.STM) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		tx.Write(counter, tx.Read(counter)+1)
		tx.Write(waived, 1)
		return nil
	})
}

func siteB(s *gstm.STM) {
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		tx.Write(counter, 0)
		tx.Write(spread, 1)
		tx.Write(waived, 2)
		return nil
	})
}

func siteC(s *gstm.STM) {
	_ = s.Atomic(0, 2, func(tx *gstm.Tx) error {
		// The write reaches counter through a helper: the footprint
		// propagation still attributes it to this site.
		bump(tx)
		tx.Write(spread, 2)
		tx.Write(waived, 3)
		return nil
	})
}

// reader only reads counter; read sites do not count toward gstm010.
func reader(s *gstm.STM, out *gstm.Var) {
	_ = s.Atomic(0, 3, func(tx *gstm.Tx) error {
		tx.Write(out, tx.Read(counter))
		return nil
	})
}

func bump(tx *gstm.Tx) {
	tx.Write(counter, tx.Read(counter)+1)
}
