// Package transitive exercises gstm006: retry-unsafe effects a
// transaction body reaches through helpers that never touch the
// handle — the blind spot of the intraprocedural gstm001.
package transitive

import (
	"math/rand"
	"os"
	"time"

	"gstm"
	"gstm/internal/tl2"
)

var sink *os.File

// jitter draws from the shared PRNG but takes no handle, so gstm001
// never inspects it; every retry of a body that calls it re-draws.
func jitter() int { return rand.Intn(8) }

// persist chains two plain helpers deep before hitting file I/O —
// the seeded tx body -> helper -> os.File.Write case.
func persist(b []byte) { logBytes(b) }

func logBytes(b []byte) {
	sink.Write(b)
}

// spin samples wall-clock time behind a helper.
func spin() { time.Sleep(time.Millisecond) }

// spawn leaks a goroutine per retry.
func spawn(done chan struct{}) {
	go func() { done <- struct{}{} }()
}

func positives(s *gstm.STM, v *gstm.Var, done chan struct{}) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		delay := jitter()  // want "gstm006"
		persist([]byte{1}) // want "gstm006"
		spin()             // want "gstm006"
		spawn(done)        // want "gstm006" "gstm006" -- spawn + the send inside the goroutine
		tx.Write(v, tx.Read(v)+int64(delay))
		return nil
	})
}

// clamp is a pure helper: calling it from a body is the composition
// the checker must not punish.
func clamp(x int64) int64 {
	if x > 100 {
		return 100
	}
	return x
}

// indirect hides its callee behind a func value: dynamic dispatch is
// an analysis horizon, so traversal stops without reporting.
func indirect(f func() int) int { return f() }

func negatives(s *gstm.STM, v *gstm.Var) {
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		tx.Write(v, clamp(tx.Read(v)))
		_ = indirect(func() int { return 1 })
		return nil
	})
	// Irrevocable bodies run exactly once: reaching I/O through a
	// helper is their whole point.
	_ = s.AtomicIrrevocable(0, 2, func(tx *tl2.IrrevTx) error {
		persist([]byte{2})
		tx.Write(v, 1)
		return nil
	})
}
