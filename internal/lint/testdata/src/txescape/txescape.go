// Package txescape exercises gstm002: transaction handles escaping
// their attempt.
package txescape

import (
	"gstm"
	"gstm/internal/tl2"
)

// leakedTx is the classic escape target: a package-level variable.
var leakedTx *gstm.Tx

type holder struct {
	tx *tl2.Tx
}

type txMsg struct {
	tx *tl2.Tx
}

func positives(s *gstm.STM, v *gstm.Var, h *holder, byID map[int]*tl2.Tx, ch chan *tl2.Tx) {
	var stash []*tl2.Tx
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		leakedTx = tx              // want "gstm002"
		h.tx = tx                  // want "gstm002"
		byID[0] = tx               // want "gstm002"
		ch <- tx                   // want "gstm002" "gstm001"
		_ = txMsg{tx: tx}          // want "gstm002"
		stash = append(stash, tx)  // want "gstm002"
		go func() { tx.Read(v) }() // want "gstm002" "gstm001" "gstm007"
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
	_ = stash
}

// returnTx escapes the handle upward: whatever the caller does with
// it outlives the attempt that owned it.
func returnTx(tx *tl2.Tx) *tl2.Tx {
	return tx // want "gstm002"
}

// readHook is an escape target for method values: `tx.Read` closes
// over the handle even though no *Tx value is assigned anywhere.
var readHook func(*tl2.Var) int64

func methodValues(s *gstm.STM, v *gstm.Var) {
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		readHook = tx.Read // want "gstm002"
		w := tx.Write      // want "gstm002"
		_ = w
		tx.Write(v, tx.Read(v)+1) // direct invocation binds nothing
		return nil
	})
}

// negatives: passing the handle down into helpers (and taking local
// aliases that stay on the stack) is how transactional code composes.
func useTx(tx *tl2.Tx, v *tl2.Var) int64 { return tx.Read(v) }

func negatives(s *gstm.STM, v *gstm.Var) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		local := tx
		sum := useTx(local, v)
		tx.Write(v, sum+1)
		return nil
	})
}
