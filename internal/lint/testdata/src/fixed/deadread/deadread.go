// Package deadread exercises gstm007: transactional reads in
// statement position, whose discarded result still widens the read
// set and manufactures false conflicts.
package deadread

import "gstm"

func positives(s *gstm.STM, v *gstm.Var, arr *gstm.Array, m *gstm.Map, q *gstm.Queue) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		tx.Write(v, 1)
		return nil
	})
}

func negatives(s *gstm.STM, v *gstm.Var, arr *gstm.Array, m *gstm.Map, q *gstm.Queue) {
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		// Used results are the normal case.
		x := tx.Read(v)
		if arr.Get(tx, 0) > 0 {
			x++
		}
		if _, ok := m.Get(tx, 1); ok {
			x++
		}
		// Deliberate read-set widening, documented with the blank
		// identifier: subscribe to v so any concurrent writer aborts us.
		_ = tx.Read(v)
		tx.Write(v, x+q.Len(tx))
		return nil
	})
	// Raw setup-time accessors (no handle in flight) are gstm003's
	// territory, not a dead read.
	_ = arr.Len()
}
