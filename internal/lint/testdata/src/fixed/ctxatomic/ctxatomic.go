// Package ctxatomic exercises gstm008: receiving a context.Context but
// calling Atomic, which silently drops cancellation.
package ctxatomic

import (
	"context"

	"gstm"
	"gstm/internal/tl2"
)

func positive(ctx context.Context, s *gstm.STM, v *gstm.Var) error {
	return s.AtomicCtx(ctx, 0, 0, func(tx *gstm.Tx) error { // want "gstm008"
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
}

// positiveUnusedCtx: holding a context and not using it at all is still
// a dropped deadline — the signature is the promise.
func positiveUnusedCtx(_ context.Context, s *tl2.STM, v *tl2.Var) {
	_ = s.Atomic(0, 1, func(tx *tl2.Tx) error { // want "gstm008"
		tx.Write(v, 1)
		return nil
	})
}

// positiveLit: a function literal with its own ctx parameter is judged
// by its own signature.
func positiveLit(s *gstm.STM, v *gstm.Var) {
	f := func(ctx context.Context) error {
		return s.AtomicCtx(ctx, 0, 2, func(tx *gstm.Tx) error { // want "gstm008"
			tx.Write(v, tx.Read(v)+1)
			return nil
		})
	}
	_ = f(context.Background())
}

// negativeCtxCall: AtomicCtx threads the context through — compliant.
func negativeCtxCall(ctx context.Context, s *gstm.STM, v *gstm.Var) error {
	return s.AtomicCtx(ctx, 0, 0, func(tx *gstm.Tx) error {
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
}

// negativeNoCtx: no context parameter, plain Atomic is the right call.
func negativeNoCtx(s *gstm.STM, v *gstm.Var) error {
	return s.Atomic(0, 0, func(tx *gstm.Tx) error {
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
}

// negativeIrrevocable: AtomicIrrevocable has no retry loop to cancel;
// gstm008 only concerns Atomic.
func negativeIrrevocable(ctx context.Context, s *gstm.STM, v *gstm.Var) error {
	return s.AtomicIrrevocable(0, 0, func(tx *tl2.IrrevTx) error {
		tx.Write(v, 1)
		return nil
	})
}

// negativeNestedLit: the literal has no ctx parameter of its own, so it
// is judged independently of the enclosing scope (goroutine bodies own
// their lifetimes).
func negativeNestedLit(ctx context.Context, s *gstm.STM, v *gstm.Var) {
	go func() {
		_ = s.Atomic(0, 3, func(tx *gstm.Tx) error {
			tx.Write(v, tx.Read(v)+1)
			return nil
		})
	}()
}

// negativeIgnored: the documented escape hatch still works.
func negativeIgnored(ctx context.Context, s *gstm.STM, v *gstm.Var) error {
	return s.Atomic(0, 4, func(tx *gstm.Tx) error { //gstm:ignore gstm008 -- startup path, cancellation handled upstream
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
}
