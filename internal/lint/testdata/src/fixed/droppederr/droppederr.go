// Package droppederr exercises gstm005: silently discarding the
// result of Atomic.
package droppederr

import (
	"gstm"
	"gstm/internal/tl2"
)

func positives(s *gstm.STM, v *gstm.Var) { // want "gstm010"
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error { // want "gstm005"
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
	_ = s.AtomicIrrevocable(0, 0, func(tx *tl2.IrrevTx) error { // want "gstm005"
		tx.Write(v, 1)
		return nil
	})
	go s.Atomic(0, 1, func(tx *gstm.Tx) error { // want "gstm005"
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
	defer s.Atomic(0, 2, func(tx *gstm.Tx) error { // want "gstm005"
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
}

// negatives: a checked error, and the repo's explicit `_ =` idiom for
// transactions that cannot fail.
func negatives(s *gstm.STM, v *gstm.Var) error {
	if err := s.Atomic(0, 0, func(tx *gstm.Tx) error {
		tx.Write(v, tx.Read(v)+1)
		return nil
	}); err != nil {
		return err
	}
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
	return nil
}
