// Package readonlydecl is the gstm011 fixture: //gstm:readonly
// declarations the effect inference can and cannot prove.
package readonlydecl

import (
	"gstm"
	"gstm/internal/tl2"
)

var counter = gstm.NewVar(0)

var probe func(tx *gstm.Tx) int64

func provable(s *gstm.STM) {
	//gstm:readonly
	_ = s.Atomic(0, 20, func(tx *gstm.Tx) error {
		v := tx.Read(counter)
		_ = v
		return nil
	})
}

func writer(s *gstm.STM) {
	//gstm:readonly
	_ = s.Atomic(0, 21, func(tx *gstm.Tx) error { // want "gstm011"
		tx.Write(counter, 1)
		return nil
	})
}

func dynamic(s *gstm.STM) {
	//gstm:readonly
	_ = s.Atomic(0, 22, func(tx *gstm.Tx) error { // want "gstm011"
		v := probe(tx)
		_ = v
		return nil
	})
}

func irrevocable(s *gstm.STM) {
	//gstm:readonly
	_ = s.AtomicIrrevocable(0, 23, func(tx *tl2.IrrevTx) error { // want "gstm011"
		v := tx.Read(counter)
		_ = v
		return nil
	})
}

//gstm:readonly -- stranded: nothing transactional below // want "gstm011"

func unrelated() int { return 1 }
