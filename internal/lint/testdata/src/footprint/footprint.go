// Package footprint is the unit fixture for the static footprint
// analyzer: parameter substitution through helpers, receiver
// substitution through methods, closure-captured storage, and
// single-assignment alias tracing.
package footprint

import "gstm"

var acct = gstm.NewVar(0)
var audit = gstm.NewVar(0)

type ledger struct{ total *gstm.Var }

// credit accesses whatever Var its caller passes: the analyzer records
// a parameter-relative access and substitutes the argument per call
// site.
func credit(tx *gstm.Tx, v *gstm.Var, n int64) { tx.Write(v, tx.Read(v)+n) }

// bump adds a receiver hop: ledger.total must surface as the
// type-abstracted field root.
func (l *ledger) bump(tx *gstm.Tx) { credit(tx, l.total, 1) }

func run(s *gstm.STM, l *ledger) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		credit(tx, acct, 5)
		l.bump(tx)
		_ = tx.Read(audit)
		return nil
	})
}

func capture(s *gstm.STM) {
	// A closure-captured local holding the container: the local itself
	// is the storage identity, labeled by its declaring function.
	local := gstm.NewVar(0)
	// An alias traced through a single assignment collapses onto the
	// storage it names.
	alias := acct
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		tx.Write(local, tx.Read(alias))
		return nil
	})
}
