// Package costsat is the cost-saturation regression fixture: loops
// clamped at maxConstTrip nested across helper boundaries compound by
// 64 per level, which used to run the float estimate toward +Inf.
// The estimate must instead saturate at maxCostEstimate.
package costsat

import "gstm"

var cell = gstm.NewVar(0)

func level5(tx *gstm.Tx) {
	for i := 0; i < 100; i++ {
		v := tx.Read(cell)
		_ = v
	}
}

func level4(tx *gstm.Tx) {
	for i := 0; i < 100; i++ {
		level5(tx)
	}
}

func level3(tx *gstm.Tx) {
	for i := 0; i < 100; i++ {
		level4(tx)
	}
}

func level2(tx *gstm.Tx) {
	for i := 0; i < 100; i++ {
		level3(tx)
	}
}

func level1(tx *gstm.Tx) {
	for i := 0; i < 100; i++ {
		level2(tx)
	}
}

func deep(s *gstm.STM) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		level1(tx)
		return nil
	})
}

// shallow pins a non-saturated reference point in the same fixture:
// two nested 100-trip loops clamp to 64 each, 4096 reads total.
func shallow(s *gstm.STM) {
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		for i := 0; i < 100; i++ {
			level5(tx)
		}
		return nil
	})
}
