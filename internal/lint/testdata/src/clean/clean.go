// Package clean is the negative fixture: idiomatic transactional code
// that must produce zero diagnostics, including one deliberate
// violation silenced by the //gstm:ignore directive.
package clean

import (
	"fmt"
	"time"

	"gstm"
)

// Transfer moves amount between two accounts, with effects kept
// strictly outside the transaction.
func Transfer(s *gstm.STM, from, to *gstm.Var, amount int64) error {
	start := time.Now()
	err := s.Atomic(0, 0, func(tx *gstm.Tx) error {
		balance := tx.Read(from)
		if balance < amount {
			return fmt.Errorf("insufficient funds: %d < %d", balance, amount)
		}
		tx.Write(from, balance-amount)
		tx.Write(to, tx.Read(to)+amount)
		return nil
	})
	fmt.Printf("transfer took %v\n", time.Since(start))
	return err
}

// Audit demonstrates the suppression directive: the raw read is
// intentional here (a monitoring probe that tolerates torn reads) and
// the directive keeps that decision visible in review.
func Audit(s *gstm.STM, v *gstm.Var) int64 {
	var seen int64
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		seen = v.Value() //gstm:ignore gstm003 -- monitoring probe, torn reads acceptable
		seen += tx.Read(v)
		return nil
	})
	return seen
}
