// Package retryunsafe exercises gstm001: side effects inside
// transaction bodies. Positive cases carry `// want` expectations;
// everything else must stay diagnostic-free.
package retryunsafe

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gstm"
	"gstm/internal/stamp"
	"gstm/internal/tl2"
)

func positives(s *gstm.STM, v *gstm.Var, ch chan int, mu *sync.Mutex, rng *stamp.Rand) {
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		fmt.Println("attempt", tx.Read(v)) // want "gstm001"
		t := time.Now()                    // want "gstm001"
		_ = rand.Intn(10)                  // want "gstm001"
		_ = rng.Intn(10)                   // want "gstm001"
		go func() { _ = t }()              // want "gstm001"
		ch <- 1                            // want "gstm001"
		<-ch                               // want "gstm001"
		close(ch)                          // want "gstm001"
		mu.Lock()                          // want "gstm001"
		time.Sleep(time.Millisecond)       // want "gstm001"
		println("raw")                     // want "gstm001"
		return nil
	})
}

// helper has a *Tx parameter, so it can only run inside a transaction:
// its body is checked exactly like an Atomic closure.
func helper(tx *tl2.Tx, v *tl2.Var) {
	fmt.Printf("v=%d\n", tx.Read(v)) // want "gstm001"
}

// irrevocable bodies run exactly once, so I/O, timing and randomness
// are the sanctioned escape hatch — but blocking constructs still
// hold the irrevocability token and every touched lock.
func irrevocable(s *tl2.STM, v *tl2.Var, ch chan int, mu *sync.Mutex) {
	_ = s.AtomicIrrevocable(0, 0, func(tx *tl2.IrrevTx) error {
		fmt.Println("logged once", tx.Read(v)) // I/O is legal here
		_ = time.Now()                         // so is timing
		ch <- 1                                // want "gstm001"
		mu.Lock()                              // want "gstm001"
		return nil
	})
}

// negatives: effects before and after the transaction, and pure
// formatting inside it, are all fine.
func negatives(s *gstm.STM, v *gstm.Var, rng *stamp.Rand) {
	start := time.Now()
	jitter := rng.Intn(8)
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		msg := fmt.Sprintf("pure formatting %d", jitter)
		tx.Write(v, tx.Read(v)+int64(len(msg)))
		return nil
	})
	fmt.Println("elapsed", time.Since(start))
}
