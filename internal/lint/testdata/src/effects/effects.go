// Package effects is the unit fixture for the effect-inference pass:
// one site per verdict shape — readonly through helpers, readonly via
// AtomicCtx and via a named function body, write-bounded, and the
// unknown poisons (dynamic dispatch, handle escape direct and through
// a helper), plus an irrevocable site and a transaction ID shared by a
// reader and a writer (certification must refuse it).
package effects

import (
	"context"

	"gstm"
	"gstm/internal/tl2"
)

var (
	balance = gstm.NewVar(0)
	ledger  = gstm.NewVar(0)

	// hook makes a call site the analysis cannot resolve.
	hook func(tx *gstm.Tx) int64

	// leaked gives the escape site somewhere to store the handle.
	leaked *gstm.Tx
)

// sumBoth is a read-only helper taking the handle; its accesses fold
// into each caller.
func sumBoth(tx *gstm.Tx) int64 { return tx.Read(balance) + tx.Read(ledger) }

// giveBack returns the handle — gstm002's catalogue, rechecked by the
// effect pass when certifying callers.
func giveBack(tx *gstm.Tx) *gstm.Tx { return tx }

// scanAll is a named transaction body (no closure at the site).
func scanAll(tx *gstm.Tx) error {
	total := sumBoth(tx)
	_ = total
	return nil
}

func run(s *gstm.STM, ctx context.Context) {
	// tx 0: readonly — reads only, including through a helper.
	_ = s.Atomic(0, 0, func(tx *gstm.Tx) error {
		total := sumBoth(tx)
		_ = total
		return nil
	})

	// tx 1: write-bounded — the write set is one concrete label.
	_ = s.Atomic(0, 1, func(tx *gstm.Tx) error {
		tx.Write(balance, tx.Read(balance)+1)
		return nil
	})

	// tx 2: unknown — dynamic dispatch through a func value.
	_ = s.Atomic(0, 2, func(tx *gstm.Tx) error {
		v := hook(tx)
		_ = v
		return nil
	})

	// tx 3: unknown — the handle escapes into a package variable.
	_ = s.Atomic(0, 3, func(tx *gstm.Tx) error {
		leaked = tx
		return nil
	})

	// tx 4: readonly through AtomicCtx (the shifted argument layout).
	_ = s.AtomicCtx(ctx, 0, 4, func(tx *gstm.Tx) error {
		v := tx.Read(ledger)
		_ = v
		return nil
	})

	// tx 5: readonly with the body passed as a declared function.
	_ = s.Atomic(0, 5, scanAll)

	// tx 6: irrevocable — read-only body, but never certifiable.
	_ = s.AtomicIrrevocable(0, 6, func(tx *tl2.IrrevTx) error {
		v := tx.Read(balance)
		_ = v
		return nil
	})

	// tx 7, site A: readonly on its own ...
	_ = s.Atomic(0, 7, func(tx *gstm.Tx) error {
		v := tx.Read(balance)
		_ = v
		return nil
	})
	// ... but tx 7, site B writes: the shared ID must not certify.
	_ = s.Atomic(1, 7, func(tx *gstm.Tx) error {
		tx.Write(ledger, 0)
		return nil
	})

	// tx 8: unknown — the handle escapes inside a helper (returned).
	_ = s.Atomic(0, 8, func(tx *gstm.Tx) error {
		t := giveBack(tx)
		_ = t
		return nil
	})
}
