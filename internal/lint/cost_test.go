package lint

import (
	"math"
	"path/filepath"
	"testing"
)

// TestCostSaturation pins the nested-loop weight fix: five helper
// levels of clamped-at-64 loops used to compound to 64^5 ≈ 1.07e9 (and
// deeper chains to +Inf); every accumulation now saturates at
// maxCostEstimate, so the estimate stays finite and the prior's weight
// arithmetic stays sane.
func TestCostSaturation(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "src", "costsat"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fixture does not type-check: %v", terr)
		}
	}
	g := Footprint(pkgs, loader.ModuleRoot)
	if len(g.Sites) != 2 {
		t.Fatalf("got %d sites, want 2", len(g.Sites))
	}

	deep := g.Sites[0]
	if deep.Cost.Reads != maxCostEstimate {
		t.Errorf("deep chain reads = %g, want saturation at %d", deep.Cost.Reads, int(maxCostEstimate))
	}
	if math.IsInf(deep.Cost.Commit(), 1) || math.IsNaN(deep.Cost.Commit()) {
		t.Errorf("deep chain commit cost = %g, must stay finite", deep.Cost.Commit())
	}

	// Below the ceiling nothing changes: two clamped loop levels are
	// still the exact 64*64 product.
	shallow := g.Sites[1]
	if want := 64.0 * 64.0; shallow.Cost.Reads != want {
		t.Errorf("shallow reads = %g, want %g", shallow.Cost.Reads, want)
	}
}
