package lint

import (
	"go/ast"
	"go/types"
)

func init() { Register(deadRead{}) }

// deadRead is gstm007: transactional reads whose result is discarded.
//
// A tx.Read whose value is never used is not a harmless no-op: the
// read still enters the attempt's read set, so commit validation now
// covers a word the transaction never needed. Every writer of that
// word becomes a potential conflict — aborts rise, the profiled
// transaction sequences gain edges that no real data dependence
// explains, and the TSA model learns conflict structure that is an
// artifact of the dead read rather than the workload. The same holds
// for read-only collection operations (Get/Contains/Len) in statement
// position. Deliberate read-set widening — subscribing to a word so a
// concurrent writer aborts this transaction — is a legitimate
// technique; spell it `_ = tx.Read(v)` to keep the intent visible,
// exactly like gstm005's `_ =` idiom for Atomic errors.
type deadRead struct{}

func (deadRead) ID() string   { return "gstm007" }
func (deadRead) Name() string { return "dead-read" }
func (deadRead) Doc() string {
	return "flags Read/ReadFloat and read-only collection calls (Get, Contains, Len) in " +
		"statement position inside transaction bodies: the discarded read still widens " +
		"the read set, inflating false conflicts and aborts and distorting the profiled " +
		"conflict structure; write `_ = tx.Read(v)` to document deliberate read-set " +
		"widening"
}

// readOnlyTxMethods are Tx/IrrevTx methods that only read.
var readOnlyTxMethods = map[string]bool{
	"Read":      true,
	"ReadFloat": true,
}

// readOnlyDataMethods are transactional-container methods that only
// read (their tx-handle argument proves they run inside a body).
var readOnlyDataMethods = map[string]bool{
	"Get":      true,
	"Contains": true,
	"Len":      true,
}

func (c deadRead) Check(p *Pass) {
	for _, ctx := range p.STMContexts() {
		p.inspectIgnoringNestedContexts(ctx.body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true
			}
			recv := sig.Recv().Type()
			// Deleting the statement is the mechanical fix: it removes the
			// read-set widening. Deliberate widening is spelled `_ =` and
			// never reaches this report.
			fix := &Fix{
				Message: "delete the dead read",
				Edits:   []TextEdit{p.edit(stmt.Pos(), stmt.End(), "")},
			}
			switch {
			case readOnlyTxMethods[fn.Name()] && isTxPointer(recv):
				p.ReportFixf(call.Pos(), fix, "result of %s is discarded: the dead read still enters the read set, turning every writer of that word into a false conflict; use the value or document deliberate read-set widening with `_ =`", callName(fn))
			case readOnlyDataMethods[fn.Name()] && c.takesTxArg(p, call):
				if name, ok := isSTMDataType(recv); ok {
					p.ReportFixf(call.Pos(), fix, "result of %s.%s is discarded: the dead read still enters the read set, turning every writer into a false conflict; use the value or document deliberate read-set widening with `_ =`", name, fn.Name())
				}
			}
			return true
		})
	}
}

// takesTxArg reports whether any argument of call is a transaction
// handle (distinguishing transactional Get/Contains/Len from the raw
// setup-time accessors gstm003 covers).
func (deadRead) takesTxArg(p *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isTxPointer(p.exprType(arg)) {
			return true
		}
	}
	return false
}
