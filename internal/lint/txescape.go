package lint

import (
	"go/ast"
	"go/types"
)

func init() { Register(txEscape{}) }

// txEscape is gstm002: transaction handles leaving their attempt.
//
// A *Tx is only valid inside the function passed to Atomic, for the
// duration of one attempt: its read/write sets are recycled through a
// pool the moment Atomic returns, and an aborted attempt's handle
// refers to state the next attempt overwrites. A handle stored in a
// field, global, container or channel — or captured by a goroutine —
// can be used after (or concurrently with) its attempt, turning into
// reads of recycled memory and writes that bypass commit validation
// entirely. The same holds for *IrrevTx after its single run ends.
type txEscape struct{}

func (txEscape) ID() string   { return "gstm002" }
func (txEscape) Name() string { return "tx-escape" }
func (txEscape) Doc() string {
	return "flags *Tx/*IrrevTx handles escaping the transaction attempt: stored into a " +
		"field, global, slice, map or channel, returned from a helper, or captured by a " +
		"spawned goroutine; a handle is recycled when Atomic returns, so escaped uses " +
		"touch another attempt's read/write sets and bypass commit validation"
}

func (c txEscape) Check(p *Pass) {
	for _, ctx := range p.STMContexts() {
		// Pre-collect callee expressions so `tx.Read(v)` is recognized as
		// a direct invocation, not a method value.
		invoked := map[ast.Expr]bool{}
		p.inspectIgnoringNestedContexts(ctx.body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				invoked[ast.Unparen(call.Fun)] = true
			}
			return true
		})
		p.inspectIgnoringNestedContexts(ctx.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				// A method value like `tx.Read` closes over the handle: the
				// resulting func carries the *Tx wherever it flows, so any
				// binding that is not an immediate call is an escape vector.
				if !invoked[n] {
					if sel, ok := p.Pkg.Info.Selections[n]; ok &&
						sel.Kind() == types.MethodVal && isTxPointer(sel.Recv()) {
						p.Reportf(n.Pos(), "method value %s.%s binds the transaction handle and can be invoked after the attempt ends; call the method directly or pass plain values", types.ExprString(n.X), n.Sel.Name)
					}
				}
			case *ast.AssignStmt:
				c.checkAssign(p, n)
			case *ast.SendStmt:
				if isTxPointer(p.exprType(n.Value)) {
					p.Reportf(n.Pos(), "transaction handle sent on a channel escapes its attempt; pass values computed from the transaction instead")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if isTxPointer(p.exprType(res)) {
						p.Reportf(res.Pos(), "transaction handle returned from the enclosing function escapes its attempt; return the values it read instead")
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isTxPointer(p.exprType(v)) {
						p.Reportf(v.Pos(), "transaction handle stored in a composite literal may outlive its attempt")
					}
				}
			case *ast.CallExpr:
				if p.calleeBuiltin(n) == "append" {
					for _, arg := range n.Args {
						if isTxPointer(p.exprType(arg)) {
							p.Reportf(arg.Pos(), "transaction handle appended to a slice may outlive its attempt")
						}
					}
				}
			case *ast.GoStmt:
				if p.usesTxObj(ctx, n.Call) {
					p.Reportf(n.Pos(), "goroutine captures the transaction handle: it runs concurrently with (and beyond) the attempt, so its accesses race the commit protocol")
				}
			}
			return true
		})
	}
}

// checkAssign flags assignments that store a tx-typed value anywhere
// other than a plain local variable.
func (c txEscape) checkAssign(p *Pass, assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return // multi-value call unpacking cannot produce a bare handle store
	}
	for i, rhs := range assign.Rhs {
		if !isTxPointer(p.exprType(rhs)) {
			continue
		}
		switch lhs := ast.Unparen(assign.Lhs[i]).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			if obj := p.assignTarget(lhs); obj != nil && p.Pkg.Types != nil && obj.Parent() == p.Pkg.Types.Scope() {
				p.Reportf(assign.Pos(), "transaction handle stored in package-level variable %s escapes its attempt", lhs.Name)
			}
			// Local aliases are allowed; the alias itself is not tracked.
		case *ast.SelectorExpr:
			p.Reportf(assign.Pos(), "transaction handle stored in a field escapes its attempt; keep handles on the stack of the Atomic closure")
		case *ast.IndexExpr:
			p.Reportf(assign.Pos(), "transaction handle stored in a slice or map escapes its attempt; keep handles on the stack of the Atomic closure")
		case *ast.StarExpr:
			p.Reportf(assign.Pos(), "transaction handle stored through a pointer escapes its attempt; keep handles on the stack of the Atomic closure")
		}
	}
}

// assignTarget resolves the object an identifier assigns to (Defs for
// :=, Uses for =).
func (p *Pass) assignTarget(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}
