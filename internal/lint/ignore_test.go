package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreDirectiveEdgeCases pins the suppression corner cases on
// the dedicated fixture: a standalone directive covering the
// multi-line statement below it, a directive mixing a valid ID with a
// bogus one, and a directive whose IDs do not match the finding.
func TestIgnoreDirectiveEdgeCases(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "src", "ignore"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("ignore fixture does not type-check: %v", terr)
		}
	}
	diags := Run(pkgs, nil)
	if len(diags) != 1 {
		for _, d := range diags {
			t.Logf("diagnostic: %s", d)
		}
		t.Fatalf("got %d diagnostics, want exactly 1 (the non-matching-ID line)", len(diags))
	}
	d := diags[0]
	if d.Check != "gstm007" {
		t.Errorf("surviving diagnostic is %s, want gstm007", d.Check)
	}
	if d.Position.Line != 24 {
		t.Errorf("surviving diagnostic at line %d, want 24 (the `bogus999`-only directive)", d.Position.Line)
	}
}

// TestIgnoreDirectiveDoesNotLeakAcrossPackages guards the dogfood run:
// suppression is keyed per package and file, so a directive inside a
// fixture package must not swallow diagnostics from any other package
// loaded in the same Run.
func TestIgnoreDirectiveDoesNotLeakAcrossPackages(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	inFile := func(diags []Diagnostic, substr string) int {
		n := 0
		for _, d := range diags {
			if strings.Contains(d.Position.Filename, substr) {
				n++
			}
		}
		return n
	}

	alone, err := loader.Load(filepath.Join("testdata", "src", "retryunsafe"))
	if err != nil {
		t.Fatalf("Load(retryunsafe): %v", err)
	}
	want := inFile(Run(alone, nil), "retryunsafe")
	if want == 0 {
		t.Fatal("retryunsafe fixture produced no diagnostics on its own")
	}

	both, err := loader.Load(
		filepath.Join("testdata", "src", "ignore"),
		filepath.Join("testdata", "src", "retryunsafe"),
	)
	if err != nil {
		t.Fatalf("Load(both): %v", err)
	}
	if got := inFile(Run(both, nil), "retryunsafe"); got != want {
		t.Errorf("retryunsafe diagnostics dropped from %d to %d when the ignore fixture joined the run", want, got)
	}
}
