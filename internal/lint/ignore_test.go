package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreDirectiveEdgeCases pins the suppression corner cases on
// the dedicated fixture: a standalone directive covering the
// multi-line statement below it, a directive mixing a valid ID with a
// bogus one, and a directive whose IDs do not match the finding.
func TestIgnoreDirectiveEdgeCases(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "src", "ignore"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("ignore fixture does not type-check: %v", terr)
		}
	}
	diags := Run(pkgs, nil)
	// Two findings survive on line 24: the dead read the bogus999-only
	// directive failed to suppress, and the gstm000 hygiene warning
	// about that directive having suppressed nothing.
	if len(diags) != 2 {
		for _, d := range diags {
			t.Logf("diagnostic: %s", d)
		}
		t.Fatalf("got %d diagnostics, want exactly 2 (gstm000 + gstm007 on the non-matching-ID line)", len(diags))
	}
	for i, want := range []string{"gstm007", "gstm000"} {
		if diags[i].Check != want {
			t.Errorf("diagnostic %d is %s, want %s", i, diags[i].Check, want)
		}
		if diags[i].Position.Line != 24 {
			t.Errorf("diagnostic %d at line %d, want 24 (the `bogus999`-only directive)", i, diags[i].Position.Line)
		}
	}
}

// TestIgnoreDirectiveDoesNotLeakAcrossPackages guards the dogfood run:
// suppression is keyed per package and file, so a directive inside a
// fixture package must not swallow diagnostics from any other package
// loaded in the same Run.
func TestIgnoreDirectiveDoesNotLeakAcrossPackages(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	inFile := func(diags []Diagnostic, substr string) int {
		n := 0
		for _, d := range diags {
			if strings.Contains(d.Position.Filename, substr) {
				n++
			}
		}
		return n
	}

	alone, err := loader.Load(filepath.Join("testdata", "src", "retryunsafe"))
	if err != nil {
		t.Fatalf("Load(retryunsafe): %v", err)
	}
	want := inFile(Run(alone, nil), "retryunsafe")
	if want == 0 {
		t.Fatal("retryunsafe fixture produced no diagnostics on its own")
	}

	both, err := loader.Load(
		filepath.Join("testdata", "src", "ignore"),
		filepath.Join("testdata", "src", "retryunsafe"),
	)
	if err != nil {
		t.Fatalf("Load(both): %v", err)
	}
	if got := inFile(Run(both, nil), "retryunsafe"); got != want {
		t.Errorf("retryunsafe diagnostics dropped from %d to %d when the ignore fixture joined the run", want, got)
	}
}
