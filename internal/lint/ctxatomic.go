package lint

import (
	"go/ast"
	"go/types"
)

func init() { Register(ctxAtomic{}) }

// ctxAtomic is gstm008: a function that receives a context.Context but
// calls Atomic instead of AtomicCtx.
//
// Atomic retries until commit with no way to stop; a caller that was
// handed a context has promised its own caller that cancellation and
// deadlines propagate, and a plain Atomic call silently breaks that
// promise — under a commit-abort storm the call outlives the context
// by an unbounded amount. AtomicCtx threads the context through the
// retry loop, backoff sleeps and contention-manager waits, and returns
// ErrDeadline when the context expires first.
//
// Only calls lexically inside the context-receiving function body are
// flagged; nested function literals are judged by their own signatures
// (a literal is often a transaction body or a goroutine with its own
// lifetime rules). AtomicCtx and AtomicIrrevocable calls are not
// flagged, and the STM implementation packages are exempt.
type ctxAtomic struct{}

func (ctxAtomic) ID() string   { return "gstm008" }
func (ctxAtomic) Name() string { return "ctx-dropped-cancel" }
func (ctxAtomic) Doc() string {
	return "flags plain Atomic calls inside functions that receive a context.Context: " +
		"Atomic retries until commit and ignores cancellation, silently dropping the " +
		"caller's deadline; use AtomicCtx(ctx, ...) so the retry loop observes ctx.Done()"
}

func (c ctxAtomic) Check(p *Pass) {
	if isSTMImplPackage(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil || !p.hasContextParam(ft) {
				return true
			}
			c.checkBody(p, body, contextParamName(p, ft))
			return true
		})
	}
}

// checkBody flags plain Atomic calls directly inside body, stopping at
// nested function literals (each is judged by its own signature).
// ctxName is the enclosing function's context parameter ("" when the
// parameter is unnamed/blank, in which case no fix is offered).
func (c ctxAtomic) checkBody(p *Pass, body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		if fn == nil || fn.Name() != "Atomic" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		if name, isSTM := namedSTMType(sig.Recv().Type()); !isSTM || name != "STM" {
			return true
		}
		// Rewrite s.Atomic(th, id, fn) into s.AtomicCtx(ctx, th, id, fn)
		// when the context parameter has a usable name.
		var fix *Fix
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && ctxName != "" && len(call.Args) > 0 {
			fix = &Fix{
				Message: "thread the context through AtomicCtx",
				Edits: []TextEdit{
					p.edit(sel.Sel.Pos(), sel.Sel.End(), "AtomicCtx"),
					p.edit(call.Args[0].Pos(), call.Args[0].Pos(), ctxName+", "),
				},
			}
		}
		p.ReportFixf(call.Pos(), fix, "Atomic called in a function that receives a context.Context: the retry loop ignores cancellation and can outlive the caller's deadline; use AtomicCtx(ctx, ...)")
		return true
	})
}

// contextParamName returns the name of ft's first named, non-blank
// context.Context parameter ("" when there is none).
func contextParamName(p *Pass, ft *ast.FuncType) string {
	if ft == nil || ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := p.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// hasContextParam reports whether the function type declares a
// context.Context parameter.
func (p *Pass) hasContextParam(ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := p.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
