package lint

import (
	"go/ast"
)

func init() { Register(droppedAtomicError{}) }

// droppedAtomicError is gstm005: ignoring the result of Atomic.
//
// Atomic's error is load-bearing: ErrRetryLimit means the transaction
// never committed (its writes were discarded), and a caller-level
// abort error means the body rolled back on purpose. Discarding the
// result lets a program continue as if the state change happened.
// Only the bare statement form is flagged — an explicit `_ =` is the
// repo's documented "this transaction cannot fail / failure is
// acceptable" idiom (unbounded retries and a body that returns nil),
// and stays visible in review.
type droppedAtomicError struct{}

func (droppedAtomicError) ID() string   { return "gstm005" }
func (droppedAtomicError) Name() string { return "dropped-atomic-error" }
func (droppedAtomicError) Doc() string {
	return "flags Atomic/AtomicIrrevocable calls whose error result is silently discarded " +
		"(statement position, go, or defer): ErrRetryLimit and caller-level aborts mean " +
		"the transaction did not commit; assign the error or use an explicit `_ =` to " +
		"document intent"
}

func (c droppedAtomicError) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			fixable := false
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
				how = "discarded"
				fixable = true
			case *ast.GoStmt:
				call = n.Call
				how = "unobservable from a go statement"
			case *ast.DeferStmt:
				call = n.Call
				how = "unobservable from a defer statement"
			}
			if call == nil {
				return true
			}
			if name, ok := atomicMethod(p.calleeFunc(call)); ok {
				// The statement form has a mechanical rewrite into the
				// documented `_ =` idiom; go/defer forms need a real
				// restructuring the author has to choose.
				var fix *Fix
				if fixable {
					fix = &Fix{
						Message: "assign the error to the blank identifier",
						Edits:   []TextEdit{p.edit(call.Pos(), call.Pos(), "_ = ")},
					}
				}
				p.ReportFixf(call.Pos(), fix, "error result of %s is %s: ErrRetryLimit or a caller-level abort means the transaction never committed; check the error or document intent with `_ =`", name, how)
			}
			return true
		})
	}
}
