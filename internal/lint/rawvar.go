package lint

import (
	"go/ast"
	"go/types"
)

func init() { Register(rawVarAccess{}) }

// rawVarAccess is gstm003: bypassing the read/write sets.
//
// Var.Value/Store (and friends on Array, Map, Queue and libtm.Obj)
// touch the committed word directly: no read-set entry, no write-back
// buffering, no commit-time validation. Inside a transaction such an
// access reads values the attempt's snapshot never validated and
// publishes writes no concurrent reader can detect — serializability
// is gone and the profiled abort attribution is wrong. Copying a
// Var/Obj by value is equally fatal at any point after first use: the
// copy carries a stale version word and its own lock, so transactions
// against copy and original stop conflicting with each other.
type rawVarAccess struct{}

func (rawVarAccess) ID() string   { return "gstm003" }
func (rawVarAccess) Name() string { return "raw-var-access" }
func (rawVarAccess) Doc() string {
	return "flags non-transactional accessors (Value, Store, Snapshot, ...) called on " +
		"transactional data inside a transaction body, and by-value copies of Var/Obj " +
		"anywhere: both bypass the read/write sets, so writes skip commit validation " +
		"and reads see unvalidated state"
}

// rawAccessors are the setup/verification methods on transactional
// containers that bypass the STM when called with a transaction open.
var rawAccessors = map[string]bool{
	"Value":      true,
	"FloatValue": true,
	"Store":      true,
	"StoreFloat": true,
	"Snapshot":   true,
}

func (c rawVarAccess) Check(p *Pass) {
	// Raw accessor calls are only wrong while a transaction is open.
	for _, ctx := range p.STMContexts() {
		p.inspectIgnoringNestedContexts(ctx.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || !rawAccessors[fn.Name()] {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true
			}
			if name, ok := isSTMDataType(sig.Recv().Type()); ok {
				p.Reportf(call.Pos(), "%s.%s inside a transaction body bypasses the read/write sets: the access is invisible to commit validation; use the tx accessors instead", name, fn.Name())
			}
			return true
		})
	}

	// By-value copies are wrong anywhere (outside the STM runtimes,
	// which are skipped wholesale).
	if isSTMImplPackage(p.Pkg.Path) {
		return
	}
	copyable := map[string]bool{"Var": true, "Obj": true}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StarExpr:
				// A dereference that produces a Var/Obj *value* is a copy
				// (as an lvalue, `*dst = *src`, it is also an overwrite of
				// live lock metadata).
				if t := p.exprType(n); t != nil {
					if name, ok := isSTMDataType(t); ok && copyable[name] {
						if _, isPtr := t.(*types.Pointer); !isPtr {
							p.Reportf(n.Pos(), "dereference copies a %s by value: the copy carries its own lock and version word, so transactions against copy and original no longer conflict", name)
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				// Range-declared idents are recorded in Defs/Uses, not in
				// the Types map, so resolve through the object.
				t := p.exprType(n.Value)
				if t == nil {
					if id, ok := n.Value.(*ast.Ident); ok {
						if obj := p.assignTarget(id); obj != nil {
							t = obj.Type()
						}
					}
				}
				if t != nil {
					if name, ok := isSTMDataType(t); ok && copyable[name] {
						if _, isPtr := t.(*types.Pointer); !isPtr {
							p.Reportf(n.Value.Pos(), "ranging by value copies each %s: iterate by index and take addresses instead", name)
						}
					}
				}
			}
			return true
		})
	}
}
