package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fixGoldens names the fixture packages whose checkers attach
// machine-applicable fixes; the fixed output is locked as a real,
// type-checking package under testdata/src/fixed/<name>. Regenerate
// with GSTM_UPDATE_GOLDEN=1.
var fixGoldens = []string{"droppederr", "deadread", "ctxatomic"}

// TestApplyFixesGolden applies every suggested fix of the fixable
// fixtures and compares the rewritten files byte-for-byte against the
// checked-in fixed packages.
func TestApplyFixesGolden(t *testing.T) {
	update := os.Getenv("GSTM_UPDATE_GOLDEN") != ""
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, name := range fixGoldens {
		t.Run(name, func(t *testing.T) {
			pkgs, err := loader.Load(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			fixed, err := ApplyFixes(Run(pkgs, nil))
			if err != nil {
				t.Fatalf("ApplyFixes: %v", err)
			}
			if len(fixed) == 0 {
				t.Fatal("fixture produced no fixable diagnostics")
			}
			for file, got := range fixed {
				goldenPath := filepath.Join("testdata", "src", "fixed", name, filepath.Base(file))
				if update {
					if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatalf("reading golden (regenerate with GSTM_UPDATE_GOLDEN=1): %v", err)
				}
				if !bytes.Equal(got, want) {
					var diff bytes.Buffer
					RenderDiff(&diff, filepath.Base(file), want, got)
					t.Errorf("fixed output drifted from %s:\n%s", goldenPath, diff.String())
				}
			}
		})
	}
}

// TestFixedGoldensAreFixedPoints re-lints the fixed packages: a second
// pass must find nothing left to fix (diagnostics without fixes — the
// go/defer forms, hotspots — may remain; that is the point of only
// attaching fixes where the rewrite is mechanical).
func TestFixedGoldensAreFixedPoints(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, name := range fixGoldens {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", "fixed", name)
			pkgs, err := loader.Load(dir)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			for _, pkg := range pkgs {
				for _, terr := range pkg.TypeErrors {
					t.Errorf("fixed package does not type-check: %v", terr)
				}
			}
			for _, d := range Run(pkgs, nil) {
				if d.Fix != nil {
					t.Errorf("fixed package still has a fixable diagnostic: %s", d)
				}
			}
		})
	}
}

// TestApplyEditsEdgeCases pins the edit-application mechanics directly:
// dedupe of identical edits, first-wins overlap resolution, and
// whole-line expansion of deletions that leave only a trailing comment.
func TestApplyEditsEdgeCases(t *testing.T) {
	src := []byte("a := 1\n\tb() // trailing\nc := 2\n")
	bOff := bytes.Index(src, []byte("b()"))
	del := TextEdit{File: "x.go", Offset: bOff, End: bOff + 3}
	out, err := applyEdits(src, []TextEdit{del, del})
	if err != nil {
		t.Fatalf("applyEdits: %v", err)
	}
	if got, want := string(out), "a := 1\nc := 2\n"; got != want {
		t.Errorf("deletion = %q, want %q (whole line including trailing comment)", got, want)
	}

	first := TextEdit{File: "x.go", Offset: 0, End: 6, NewText: "z := 9"}
	second := TextEdit{File: "x.go", Offset: 3, End: 8, NewText: "!"}
	out, err = applyEdits(src, []TextEdit{first, second})
	if err != nil {
		t.Fatalf("applyEdits: %v", err)
	}
	if !bytes.HasPrefix(out, []byte("z := 9\n")) {
		t.Errorf("overlap resolution kept %q, want the first edit to win", out[:7])
	}

	if _, err := applyEdits(src, []TextEdit{{File: "x.go", Offset: 5, End: len(src) + 1}}); err == nil {
		t.Error("out-of-bounds edit did not error")
	}
}

// TestRenderDiff pins the compact diff format -fix -diff prints.
func TestRenderDiff(t *testing.T) {
	before := []byte("one\ntwo\nthree\n")
	after := []byte("one\nTWO\nthree\n")
	var buf bytes.Buffer
	RenderDiff(&buf, "f.go", before, after)
	want := "--- a/f.go\n+++ b/f.go\n@@ -2,1 +2,1 @@\n-two\n+TWO\n"
	if buf.String() != want {
		t.Errorf("diff = %q, want %q", buf.String(), want)
	}
	buf.Reset()
	RenderDiff(&buf, "f.go", before, before)
	if buf.Len() != 0 {
		t.Errorf("identical inputs produced a diff: %q", buf.String())
	}
}

// TestDuplicateLoadPathsCollapse guards satellite determinism: the same
// fixture loaded through two paths in one Run must yield exactly the
// diagnostics of a single load — positions, checks and messages — with
// directives honored once, not twice.
func TestDuplicateLoadPathsCollapse(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", "src", "ignore")
	once, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	again, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	render := func(diags []Diagnostic) []string {
		var out []string
		for _, d := range diags {
			out = append(out, d.String())
		}
		return out
	}
	single := render(Run(once, nil))
	double := render(Run(append(once, again...), nil))
	if !reflect.DeepEqual(single, double) {
		t.Errorf("duplicate load paths changed the result:\nonce:  %s\ntwice: %s",
			strings.Join(single, "\n       "), strings.Join(double, "\n       "))
	}
}

// TestSortDiagsTotalOrder pins the tiebreak chain: position, then
// check, then message.
func TestSortDiagsTotalOrder(t *testing.T) {
	mk := func(file string, line, col int, check, msg string) Diagnostic {
		d := Diagnostic{Check: check, Message: msg}
		d.Position.Filename = file
		d.Position.Line = line
		d.Position.Column = col
		return d
	}
	diags := []Diagnostic{
		mk("a.go", 1, 1, "gstm006", "zeta"),
		mk("b.go", 1, 1, "gstm001", "a"),
		mk("a.go", 1, 1, "gstm006", "alpha"),
		mk("a.go", 1, 1, "gstm005", "m"),
	}
	sortDiags(diags)
	want := []string{"gstm005:m", "gstm006:alpha", "gstm006:zeta", "gstm001:a"}
	for i, d := range diags {
		if got := d.Check + ":" + d.Message; got != want[i] {
			t.Errorf("position %d: got %s, want %s", i, got, want[i])
		}
	}
}
