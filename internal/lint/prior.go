package lint

// Static guidance priors: lowering the static conflict graph into a
// synthetic TSA so the guide has a model before the first profile run
// exists (the cold-start problem). A profiled model records which
// thread transactional states actually follow which; the prior can
// only approximate that from what is statically knowable — which
// transactions exist, which pairs can conflict (footprint overlap) and
// how expensive each commit is (cost.go) — but that is exactly enough
// to reproduce the guide's useful behaviour on a cold system: admit
// statically disjoint work freely, and push destinations that co-run
// conflicting transactions below the Tfactor admission threshold in
// proportion to how contended and expensive the committing transaction
// is. By construction every abort edge in the prior connects a
// statically conflicting pair, so analyze.CrossCheck(prior, g) is
// empty — the prior is consistent with its own evidence.

import (
	"fmt"
	"math"
	"sort"

	"gstm/internal/model"
	"gstm/internal/tts"
)

// Prior-synthesis defaults. DefaultPriorBase is the weight of an
// unpenalized edge; the absolute scale is arbitrary (the guide
// thresholds on relative probability) but large enough that integer
// division keeps resolution after heavy penalties. maxPriorStates
// bounds the synthesized automaton: states grow with
// txs×threads + conflicts×threads², and a prior past this size would
// dwarf profiled models (Table III scale) and slow every lookup.
const (
	DefaultPriorThreads = 8
	DefaultPriorBase    = 1000
	DefaultPriorPenalty = 2.0
	maxPriorStates      = 1 << 17
)

// PriorOptions tunes SynthesizePrior. Zero values select defaults.
type PriorOptions struct {
	// Threads is the thread count the prior is materialized for (must
	// match the guide's workload configuration, like a profiled model).
	Threads int
	// Base is the weight of a conflict-free transition.
	Base int
	// Penalty scales how hard conflicting destinations are suppressed:
	// a conflict edge weighs Base / (1 + Penalty·degree·costNorm).
	Penalty float64
}

// SynthesizePrior lowers the static conflict graph into a cold-start
// TSA. States are the singleton commits {<tx_thread>} plus, for every
// statically conflicting ordered pair, the abort states
// {<a_i>, <b_j>} (b commits, aborting a). From a singleton source,
// every (tx, thread) pair is reachable — including the source's own
// pair as a self-loop, since the same thread re-committing is
// sequential and cannot conflict: conflict-free pairs at
// full Base weight, conflicting ones through their abort state at a
// weight divided by the committer's conflict degree and normalized
// commit cost — the statically-worst neighbours fall below the
// Tfactor threshold first. Abort states inherit the out-edges of
// their committer's singleton so guided execution can continue from
// any state the guide observes.
func SynthesizePrior(g *ConflictGraph, opts PriorOptions) (*model.TSA, error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = DefaultPriorThreads
	}
	base := opts.Base
	if base <= 0 {
		base = DefaultPriorBase
	}
	penalty := opts.Penalty
	if penalty <= 0 {
		penalty = DefaultPriorPenalty
	}
	if g == nil {
		return nil, fmt.Errorf("lint: prior synthesis needs a conflict graph")
	}

	// Transaction universe: every statically identified ID, costed by
	// its most expensive site (one ID can have several sites; the guide
	// cannot tell them apart, so assume the worst).
	cost := map[uint16]float64{}
	var txs []uint16
	for _, s := range g.Sites {
		if s.TxID < 0 || s.TxID > math.MaxUint16 {
			continue
		}
		id := uint16(s.TxID)
		c := s.Cost.Commit()
		if old, seen := cost[id]; !seen {
			txs = append(txs, id)
			cost[id] = c
		} else if c > old {
			cost[id] = c
		}
	}
	if len(txs) == 0 {
		return nil, fmt.Errorf("lint: no Atomic sites with constant transaction IDs; nothing to synthesize a prior from")
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })

	conflict := map[[2]uint16]bool{}
	degree := map[uint16]int{}
	for _, p := range g.TxIDPairs() {
		conflict[p] = true
		degree[p[0]]++
		if p[1] != p[0] {
			degree[p[1]]++
		}
	}
	conflicts := func(a, b uint16) bool {
		if a > b {
			a, b = b, a
		}
		return conflict[[2]uint16{a, b}]
	}
	minCost := math.Inf(1)
	for _, id := range txs {
		if cost[id] < minCost {
			minCost = cost[id]
		}
	}

	// Size guard before materializing anything.
	abortStates := 0
	for _, a := range txs {
		for _, b := range txs {
			if !conflicts(a, b) {
				continue
			}
			abortStates += threads * threads
			if a == b {
				abortStates -= threads // i == j is not a state
			}
		}
	}
	if total := len(txs)*threads + abortStates; total > maxPriorStates {
		return nil, fmt.Errorf("lint: synthesized prior would have %d states (max %d); reduce -prior-threads or shard the hottest storage", total, maxPriorStates)
	}

	m := model.New(threads)
	ensure := func(st tts.State) *model.Node {
		key := st.Key()
		n := m.Nodes[key]
		if n == nil {
			cp := tts.State{Commit: st.Commit, Aborts: append([]tts.Pair(nil), st.Aborts...)}
			cp.Canonicalize()
			n = &model.Node{State: cp, Out: map[string]int{}}
			m.Nodes[key] = n
		}
		return n
	}
	weight := func(committer uint16) int {
		w := int(float64(base) / (1 + penalty*float64(degree[committer])*(cost[committer]/minCost)))
		if w < 1 {
			w = 1
		}
		return w
	}

	for _, a := range txs {
		for i := 0; i < threads; i++ {
			running := tts.Pair{Tx: a, Thread: uint16(i)}
			src := ensure(tts.State{Commit: running})
			for _, b := range txs {
				for j := 0; j < threads; j++ {
					next := tts.Pair{Tx: b, Thread: uint16(j)}
					var dest tts.State
					w := base
					if next == running {
						// The same thread re-committing its transaction is
						// sequential, never a conflict: a plain self-loop.
						src.Out[tts.State{Commit: running}.Key()] += w
						src.Total += w
						continue
					}
					if conflicts(a, b) {
						// b committing aborts a's re-execution: the abort
						// state exists, but entering it is penalized.
						dest = tts.State{Commit: next, Aborts: []tts.Pair{running}}
						w = weight(b)
					} else {
						dest = tts.State{Commit: next}
					}
					destNode := ensure(dest)
					_ = destNode
					src.Out[dest.Key()] += w
					src.Total += w
				}
			}
		}
	}

	// Abort states continue like their committer's singleton: after
	// {<a_i>, <b_j>} the system is simply "b committed on j".
	for _, n := range m.Nodes {
		if len(n.State.Aborts) == 0 {
			continue
		}
		singleton := m.Nodes[tts.State{Commit: n.State.Commit}.Key()]
		if singleton == nil {
			continue
		}
		for k, c := range singleton.Out {
			n.Out[k] += c
			n.Total += c
		}
	}
	return m, nil
}
