package gstm

import (
	"context"
	"errors"
	"testing"
	"time"

	"gstm/internal/fault"
	"gstm/internal/libtm"
	"gstm/internal/tl2"
)

// TestSentinelIdentity pins the façade sentinels to the runtime ones:
// errors.Is must match through the re-export, so callers can depend on
// the façade without importing the internal packages.
func TestSentinelIdentity(t *testing.T) {
	if !errors.Is(ErrRetryLimit, tl2.ErrRetryLimit) {
		t.Error("gstm.ErrRetryLimit does not match tl2.ErrRetryLimit")
	}
	if !errors.Is(ErrDeadline, tl2.ErrDeadline) {
		t.Error("gstm.ErrDeadline does not match tl2.ErrDeadline")
	}
	// The two runtimes keep distinct sentinels — a libtm retry-limit
	// error must not satisfy a tl2 check, and vice versa.
	if errors.Is(libtm.ErrRetryLimit, tl2.ErrRetryLimit) {
		t.Error("libtm.ErrRetryLimit unexpectedly matches tl2.ErrRetryLimit")
	}
	if errors.Is(libtm.ErrDeadline, tl2.ErrDeadline) {
		t.Error("libtm.ErrDeadline unexpectedly matches tl2.ErrDeadline")
	}
}

// TestRetryLimitSentinelRoundTrip drives a real MaxRetries failure
// (every commit force-aborted, escalation disabled) and checks the
// returned error matches the façade sentinel.
func TestRetryLimitSentinelRoundTrip(t *testing.T) {
	inj := fault.NewInjector(1).Set(fault.CommitAbort, fault.Rule{Every: 1})
	s := New(Options{Inject: inj, MaxRetries: 3, EscalateAfter: -1, WatchdogWindow: -1})
	v := NewVar(0)
	err := s.Atomic(0, 0, func(tx *Tx) error {
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
	if !errors.Is(err, ErrRetryLimit) {
		t.Fatalf("err = %v, want gstm.ErrRetryLimit", err)
	}
	if !errors.Is(err, tl2.ErrRetryLimit) {
		t.Fatalf("err = %v, want tl2.ErrRetryLimit through the façade", err)
	}
	if v.Value() != 0 {
		t.Errorf("value = %d, want 0 after retry-limit failure", v.Value())
	}
}

// TestDeadlineSentinelRoundTrip drives a real deadline miss through the
// façade and checks the error matches both the façade sentinel and the
// context error it wraps.
func TestDeadlineSentinelRoundTrip(t *testing.T) {
	inj := fault.NewInjector(1).Set(fault.CommitAbort, fault.Rule{Every: 1})
	s := New(Options{Inject: inj, EscalateAfter: -1, WatchdogWindow: -1})
	v := NewVar(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := s.AtomicCtx(ctx, 0, 0, func(tx *Tx) error {
		tx.Write(v, tx.Read(v)+1)
		return nil
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want gstm.ErrDeadline", err)
	}
	if !errors.Is(err, tl2.ErrDeadline) {
		t.Fatalf("err = %v, want tl2.ErrDeadline through the façade", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to wrap context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrRetryLimit) {
		t.Fatalf("err = %v, must not match ErrRetryLimit", err)
	}
}
