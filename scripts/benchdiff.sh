#!/usr/bin/env bash
# benchdiff.sh — the micro-benchmark regression gate.
#
# Re-runs the default micro set (the same regex scripts/bench.sh
# records) and compares the fresh numbers against the committed
# baseline document (BENCH_baseline.json by default):
#
#   - ns/op: a benchmark more than GSTM_BENCHDIFF_TOL percent slower
#     than its baseline row fails the gate (default 15%). Wall-clock
#     comparisons only mean something on hardware comparable to the
#     machine that recorded the baseline; on a foreign machine set
#     GSTM_BENCHDIFF_SKIP_NS=1 to gate on allocations only, or raise
#     the tolerance.
#   - allocs/op: a benchmark whose baseline pins zero allocations must
#     still report zero — any increase fails regardless of tolerance,
#     because the zero-alloc commit paths are a correctness-adjacent
#     contract (sync.Pool reuse, snapshot caches), not a tuning knob.
#     Alloc increases on non-pinned benchmarks are reported as
#     warnings.
#
# Benchmarks present on only one side (added or retired since the
# baseline) are reported and skipped; refresh the baseline with
# scripts/bench.sh when a deliberate change moves the numbers.
#
# Short -benchtime samples on a busy box swing well past the tolerance
# run-to-run, so both sides of the comparison are noise-robust: the
# fresh run repeats each benchmark GSTM_BENCHDIFF_COUNT times (default
# 3) and the gate compares the per-benchmark minimum ns/op (the
# standard low-noise statistic — interference only ever adds time)
# against a baseline that bench.sh records the same way. Allocations go
# the other way: the gate takes the per-benchmark MAXIMUM allocs/op
# across repeats, so a pinned-zero contract can't hide behind one
# lucky sample.
#
# Knobs:
#   GSTM_BENCHDIFF_TOL        ns/op regression tolerance, percent (default 15)
#   GSTM_BENCHDIFF_BENCHTIME  -benchtime for the fresh run (default 100ms)
#   GSTM_BENCHDIFF_COUNT      -count repeats, min ns / max allocs (default 3)
#   GSTM_BENCHDIFF_SKIP_NS    non-empty skips the ns/op comparison
#   GSTM_BENCH                benchmark regex (default: bench.sh's micro set)
#   $1                        baseline path (default BENCH_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

base="${1:-BENCH_baseline.json}"
bench="${GSTM_BENCH:-^(BenchmarkTL2|BenchmarkLibTMModesRMW|BenchmarkGateOverhead|BenchmarkSynQuakeFrame)}"
tol="${GSTM_BENCHDIFF_TOL:-15}"
benchtime="${GSTM_BENCHDIFF_BENCHTIME:-100ms}"
count="${GSTM_BENCHDIFF_COUNT:-3}"
skip_ns="${GSTM_BENCHDIFF_SKIP_NS:-}"

if [ ! -f "$base" ]; then
    echo "benchdiff: baseline $base not found; record one with scripts/bench.sh" >&2
    exit 1
fi

echo "== benchdiff: $bench vs $base (tolerance ${tol}%, min of $count runs) =="
raw="$(go test -run='^$' -bench "$bench" -benchtime "$benchtime" -count "$count" -benchmem .)"
echo "$raw"

# Pass 1 reads the baseline JSON (one benchmark object per line, as
# bench.sh writes it); pass 2 folds the fresh `go test -bench` output
# down to min ns / max allocs per benchmark, and END compares. The -N
# GOMAXPROCS suffix is stripped on both sides so a baseline recorded
# on an n-core machine still joins rows from an m-core one.
echo "$raw" | awk -v tol="$tol" -v skip_ns="$skip_ns" '
FNR == NR {
    if (match($0, /"name": "[^"]*"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        sub(/-[0-9]+$/, "", name)
        if (match($0, /"ns_per_op": [0-9.eE+]+/))
            base_ns[name] = substr($0, RSTART + 13, RLENGTH - 13)
        if (match($0, /"allocs_per_op": [0-9]+/))
            base_allocs[name] = substr($0, RSTART + 17, RLENGTH - 17)
    }
    next
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = $3
    allocs = ""
    for (i = 4; i <= NF; i++)
        if ($i == "allocs/op") allocs = $(i - 1)
    if (!(name in seen)) {
        seen[name] = 1
        order[++m] = name
        min_ns[name] = ns
        max_allocs[name] = allocs
    } else {
        if (ns + 0 < min_ns[name] + 0) min_ns[name] = ns
        if (allocs != "" && (max_allocs[name] == "" || allocs + 0 > max_allocs[name] + 0))
            max_allocs[name] = allocs
    }
}
END {
    for (k = 1; k <= m; k++) {
        name = order[k]
        ns = min_ns[name]
        allocs = max_allocs[name]
        if (!(name in base_ns)) {
            printf "  NEW      %s: no baseline row (refresh scripts/bench.sh to pin it)\n", name
            continue
        }
        if (!skip_ns && base_ns[name] + 0 > 0) {
            limit = base_ns[name] * (1 + tol / 100)
            if (ns + 0 > limit) {
                printf "  FAIL     %s: %.1f ns/op vs baseline %.1f (>%d%% regression)\n",
                       name, ns, base_ns[name], tol
                fails++
            } else {
                printf "  ok       %s: %.1f ns/op vs baseline %.1f\n", name, ns, base_ns[name]
            }
        }
        if (allocs != "" && name in base_allocs) {
            if (base_allocs[name] + 0 == 0 && allocs + 0 > 0) {
                printf "  FAIL     %s: %s allocs/op vs pinned-zero baseline\n", name, allocs
                fails++
            } else if (allocs + 0 > base_allocs[name] + 0) {
                printf "  WARN     %s: %s allocs/op vs baseline %s (not pinned at zero)\n",
                       name, allocs, base_allocs[name]
            }
        }
    }
    for (name in base_ns)
        if (!(name in seen))
            printf "  GONE     %s: baseline row no longer produced by this regex\n", name
    if (fails) {
        printf "benchdiff: %d regression(s) against the committed baseline\n", fails
        exit 1
    }
    print "benchdiff: no regressions"
}' "$base" -
