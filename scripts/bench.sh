#!/usr/bin/env bash
# bench.sh — records benchmark baselines into BENCH_baseline.json and
# BENCH_rofast.json (plus the online, overload and scale documents
# described below).
#
# Runs the micro-benchmarks (STM primitives, mode matrix, gate
# overhead) with -benchmem and writes one JSON document capturing the
# machine, the Go toolchain and every benchmark's ns/op, B/op and
# allocs/op. The committed BENCH_baseline.json is the reference point
# a perf-sensitive PR diffs its own run against (re-run this script,
# compare, and refresh the file when a deliberate change moves the
# numbers). A second stanza records the certified read-only fast-path
# suite (^BenchmarkROFast) into BENCH_rofast.json at a longer benchtime
# — those benchmarks assert single-digit-ns deltas, so they need the
# extra settling time. A third stanza records the online-guidance
# overheads (^BenchmarkOnline) into BENCH_online.json: the streaming
# accumulator's per-event enqueue, the amortized epoch build + model
# swap, and the end-to-end gated commit path with the learner attached
# (diff against BenchmarkGateOverhead in BENCH_baseline.json — the
# delta is the online controller's whole commit-path footprint).
# A fourth stanza records the overload-control suite
# (^BenchmarkOverload) into BENCH_overload.json: the shed fast paths
# (deadline forecast and injected storm, both pinned at 0 allocs/op),
# the healthy acquire/release baseline, and the contention-collapse
# curve — protected vs unprotected commits/tick and aborts/commit at
# each oversubscription factor, captured from the benchmarks' custom
# ReportMetric columns (which the shared writer cannot see, so this
# stanza has its own).
# A fifth stanza records the multi-core scalability suite
# (^BenchmarkScale) into BENCH_scale.json: both runtimes' commit paths
# under -cpu 1,2,4,8 — TL2 under the global vs sharded commit clock,
# LibTM's pooled descriptors, the guide-gated path and the
# batch-commit envelopes — with each row carrying its core count and
# its speedup relative to the same benchmark's 1-core row. The
# zero-alloc acceptance rows (RMW and gate admission) must show
# allocs_per_op 0 here; scripts/benchdiff.sh holds the committed
# baseline to that.
#
# Knobs:
#   GSTM_BENCH          benchmark regex    (default: the micro set)
#   GSTM_BENCHTIME      -benchtime value   (default: 100ms)
#   GSTM_BENCH_COUNT    -count repeats for the micro set; the writer
#                       keeps each benchmark's fastest run, so the
#                       committed baseline is a low-noise floor rather
#                       than one 100ms sample (default: 3; see
#                       scripts/benchdiff.sh, which compares the same
#                       statistic)
#   GSTM_ROFAST_BENCHTIME  -benchtime for the ROFast suite (default: 2s)
#   GSTM_ONLINE_BENCHTIME  -benchtime for the Online suite (default: 1s)
#   GSTM_OVERLOAD_BENCHTIME  -benchtime for the Overload suite (default: 1s)
#   GSTM_SCALE_BENCHTIME  -benchtime for the Scale suite (default: 100ms)
#   GSTM_SCALE_CPUS     -cpu list for the Scale suite (default: 1,2,4,8)
#   GSTM_BENCH_FULL     non-empty adds the paper-table/figure suites at
#                       -benchtime=1x (slow; report-shaped, not latency-
#                       shaped, so they are excluded from the default set)
#   $1                  output path        (default: BENCH_baseline.json)
#   $2                  ROFast output path (default: BENCH_rofast.json)
#   $3                  Online output path (default: BENCH_online.json)
#   $4                  Overload output path (default: BENCH_overload.json)
#   $5                  Scale output path   (default: BENCH_scale.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_baseline.json}"
rofast_out="${2:-BENCH_rofast.json}"
online_out="${3:-BENCH_online.json}"
overload_out="${4:-BENCH_overload.json}"
scale_out="${5:-BENCH_scale.json}"
bench="${GSTM_BENCH:-^(BenchmarkTL2|BenchmarkLibTMModesRMW|BenchmarkGateOverhead|BenchmarkSynQuakeFrame)}"
benchtime="${GSTM_BENCHTIME:-100ms}"
bench_count="${GSTM_BENCH_COUNT:-3}"
rofast_benchtime="${GSTM_ROFAST_BENCHTIME:-2s}"
online_benchtime="${GSTM_ONLINE_BENCHTIME:-1s}"
overload_benchtime="${GSTM_OVERLOAD_BENCHTIME:-1s}"
scale_benchtime="${GSTM_SCALE_BENCHTIME:-100ms}"
scale_cpus="${GSTM_SCALE_CPUS:-1,2,4,8}"

# write_json <benchtime> <outpath> — reads raw `go test -bench` output
# on stdin and writes the machine-stamped JSON document. When the
# input carries -count repeats, each benchmark keeps its fastest run
# (lowest ns/op) — interference only ever slows a run down, so the
# minimum is the stable statistic for a committed baseline.
write_json() {
    awk \
        -v go_version="$(go version | awk '{print $3}')" \
        -v benchtime="$1" \
        -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^goos:/  { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/   { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    bop = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bop    = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (!(name in best_ns)) order[++n] = name
    if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) {
        best_ns[name] = ns; best_iters[name] = iters
        best_bop[name] = bop; best_allocs[name] = allocs
    }
}
END {
    for (k = 1; k <= n; k++) {
        name = order[k]
        if (k > 1) rows = rows ",\n"
        rows = rows sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                            name, best_iters[name], best_ns[name], best_bop[name], best_allocs[name])
    }
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n%s\n  ]\n}\n", rows
}' > "$2"
}

# write_metrics_json <benchtime> <outpath> — like write_json, but
# captures EVERY value-unit column pair (ns/op, B/op, allocs/op AND
# b.ReportMetric custom units like protected-commits/tick) into a
# per-benchmark "metrics" object. The overload curve's payload lives in
# those custom columns, which the fixed-schema writer would drop.
write_metrics_json() {
    awk \
        -v go_version="$(go version | awk '{print $3}')" \
        -v benchtime="$1" \
        -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^goos:/  { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/   { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        if (metrics != "") metrics = metrics ", "
        metrics = metrics sprintf("\"%s\": %s", $(i+1), $i)
    }
    if (n++) rows = rows ",\n"
    rows = rows sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}",
                        name, iters, metrics)
}
END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n%s\n  ]\n}\n", rows
}' > "$2"
}

# write_scale_json <benchtime> <cpus> <outpath> — like write_json, but
# for the -cpu matrix: strips the -N core suffix from each benchmark
# name into a "cores" field and computes speedup_vs_1core against the
# same benchmark's 1-core row (go test emits the 1-core row first, so
# a single pass suffices; the 1-core row's own speedup is 1.0).
write_scale_json() {
    awk \
        -v go_version="$(go version | awk '{print $3}')" \
        -v benchtime="$1" \
        -v cpus="$2" \
        -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^goos:/  { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/   { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    bop = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bop    = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    base = name; cores = 1
    if (match(name, /-[0-9]+$/)) {
        cores = substr(name, RSTART + 1) + 0
        base = substr(name, 1, RSTART - 1)
    }
    if (cores == 1) base_ns[base] = ns
    speedup = "null"
    if (base in base_ns && ns + 0 > 0)
        speedup = sprintf("%.3f", base_ns[base] / ns)
    if (n++) rows = rows ",\n"
    rows = rows sprintf("    {\"name\": \"%s\", \"cores\": %d, \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"speedup_vs_1core\": %s}",
                        base, cores, iters, ns, bop, allocs, speedup)
}
END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"cpus\": \"%s\",\n", cpus
    printf "  \"benchmarks\": [\n%s\n  ]\n}\n", rows
}' > "$3"
}

echo "== bench: $bench (benchtime $benchtime, min of $bench_count runs) =="
raw="$(go test -run='^$' -bench "$bench" -benchtime "$benchtime" -count "$bench_count" -benchmem .)"
echo "$raw"

if [ -n "${GSTM_BENCH_FULL:-}" ]; then
    echo "== bench: paper tables/figures (benchtime 1x) =="
    full="$(go test -run='^$' -bench '^Benchmark(Table|Figure)' -benchtime 1x -benchmem .)"
    echo "$full"
    raw="$raw"$'\n'"$full"
fi

echo "$raw" | write_json "$benchtime" "$out"
echo "== wrote $out =="

echo "== bench: certified read-only fast path (benchtime $rofast_benchtime) =="
rofast_raw="$(go test -run='^$' -bench '^BenchmarkROFast' -benchtime "$rofast_benchtime" -benchmem .)"
echo "$rofast_raw"
echo "$rofast_raw" | write_json "$rofast_benchtime" "$rofast_out"
echo "== wrote $rofast_out =="

echo "== bench: online guidance overhead (benchtime $online_benchtime) =="
online_raw="$(go test -run='^$' -bench '^BenchmarkOnline' -benchtime "$online_benchtime" -benchmem .)"
echo "$online_raw"
echo "$online_raw" | write_json "$online_benchtime" "$online_out"
echo "== wrote $online_out =="

echo "== bench: overload collapse curve + shed path (benchtime $overload_benchtime) =="
overload_raw="$(go test -run='^$' -bench '^BenchmarkOverload' -benchtime "$overload_benchtime" -benchmem .)"
echo "$overload_raw"
echo "$overload_raw" | write_metrics_json "$overload_benchtime" "$overload_out"
echo "== wrote $overload_out =="

echo "== bench: multi-core scalability (benchtime $scale_benchtime, cpus $scale_cpus) =="
scale_raw="$(go test -run='^$' -bench '^BenchmarkScale' -benchtime "$scale_benchtime" -benchmem -cpu "$scale_cpus" .)"
echo "$scale_raw"
echo "$scale_raw" | write_scale_json "$scale_benchtime" "$scale_cpus" "$scale_out"
echo "== wrote $scale_out =="
