#!/usr/bin/env bash
# check.sh — the repository's pre-merge gate (see ROADMAP.md).
#
# Runs, in order: formatting, go vet (including the -copylocks guard
# backing tl2.Var/libtm.Obj's no-copy contract), build + full test
# suite (shuffled, so inter-test ordering dependencies can't hide),
# the race detector over both STM runtimes plus the fault matrix
# (injected aborts/stalls must never deadlock the gate), a race-mode
# smoke of the schedule explorer and its oracle/scheduler stack
# (-short trims the schedule budgets), a bounded online-controller
# soak under the race detector (the streaming learner building epoch
# snapshots and swapping them into a live gate while the commit path
# runs), an overload-control soak under the race detector (the AIMD
# admission limiter, priority shedding and both runtimes' token
# ledgers hammered by oversubscribed workers, plus the deterministic
# collapse-curve acceptance test), a fuzz smoke over the binary
# decoders and the tts key codecs, and gstmlint (the STM-aware
# transaction-safety linter, checks gstm000..gstm010, including the
# interprocedural gstm006 over the module-wide call graph). The lint
# stage runs -fix -diff as a dry-run gate too — any machine-applicable
# fix left unapplied in the tree fails the build with the diff it
# would make — and finishes with a static-prior smoke: synthesize a
# cold-start model from the examples (gstmlint -prior) and run one
# tiny gstm -op coldstart pipeline against it. A manifest-freshness
# gate then regenerates the effect manifest (gstmlint -manifest) over
# the same packages and fails if it differs from the committed
# MANIFEST.gsm — a stale certificate is a soundness hazard, not just
# drift. Finally scripts/benchdiff.sh re-runs the micro-benchmark set
# against the committed BENCH_baseline.json: >15% ns/op regressions
# fail (GSTM_BENCHDIFF_TOL to adjust; GSTM_BENCHDIFF_SKIP_NS=1 on
# hardware that did not record the baseline), and any allocation on a
# benchmark the baseline pins at zero allocs/op fails unconditionally
# — the zero-alloc commit paths are a contract, not a tuning knob.
# Exits non-zero on the first failure. CI runs this same script
# (.github/workflows/ci.yml). Set GSTM_FUZZTIME to lengthen the fuzz
# smoke (default 10s per target).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== build + tests (shuffled) =="
go build ./...
go test -shuffle=on ./...

echo "== race detector (STM runtimes + fault matrix) =="
go test -race ./internal/tl2 ./internal/libtm
go test -race -run TestFaultMatrix ./internal/harness

echo "== explorer smoke (scheduler + oracle, race mode) =="
go test -race -short ./internal/sched ./internal/oracle ./internal/explorer

echo "== online controller soak (epoch swaps under race) =="
# Bounded runs with the background learner swapping models into the
# live gate: the commit path, the epoch pipeline and the drift guards
# all racing for real. The learner's own package races alongside.
go test -race ./internal/online
go test -race -run TestOnlineSoak ./internal/harness

echo "== overload soak (admission control under race) =="
# The AIMD limiter's own package races, then oversubscribed workers
# hammer both runtimes through shared limiters (every call accounted
# exactly once: commit, shed or deadline; token ledger drains to
# zero), and the deterministic oversubscription simulator proves the
# collapse-curve acceptance claim: protected throughput at 8x holds
# >= 70% of its 1x peak while unprotected demonstrably degrades.
go test -race ./internal/overload
go test -race -run 'TestOverloadSoak|TestFaultMatrix/Overload' ./internal/harness
go test -run 'TestOversub' ./internal/harness

echo "== fuzz smoke (binary decoders + tts key codecs) =="
FUZZTIME="${GSTM_FUZZTIME:-10s}"
go test -run='^$' -fuzz=FuzzModelDecode -fuzztime="$FUZZTIME" ./internal/model
go test -run='^$' -fuzz=FuzzReadSequence -fuzztime="$FUZZTIME" ./internal/trace
go test -run='^$' -fuzz=FuzzPairEncode -fuzztime="$FUZZTIME" ./internal/tts
go test -run='^$' -fuzz=FuzzStateEncode -fuzztime="$FUZZTIME" ./internal/tts

echo "== gstmlint =="
go run ./cmd/gstmlint ./...

echo "== gstmlint fix gate (dry run) =="
# A non-empty diff means a machine-applicable fix was left unapplied;
# the diff itself is the error message.
fixdiff=$(go run ./cmd/gstmlint -fix -diff ./... || true)
if [ -n "$fixdiff" ]; then
    echo "gstmlint -fix would change the tree; apply or waive:" >&2
    echo "$fixdiff" >&2
    exit 1
fi

echo "== static prior smoke (gstmlint -prior -> gstm -op coldstart) =="
prior=$(mktemp)
manifest=$(mktemp)
trap 'rm -f "$prior" "$manifest"' EXIT
go run ./cmd/gstmlint -prior "$prior" -prior-threads 4 ./examples/... ./cmd/synquake/...
go run ./cmd/gstm -bench kmeans -threads 4 -runs 2 -size small \
    -op coldstart -static-prior "$prior" -model "$prior.nonexistent"

echo "== manifest freshness (gstmlint -manifest vs MANIFEST.gsm) =="
go run ./cmd/gstmlint -manifest "$manifest" ./examples/... ./cmd/synquake/...
if ! cmp -s "$manifest" MANIFEST.gsm; then
    echo "MANIFEST.gsm is stale against the current sources; regenerate with:" >&2
    echo "  go run ./cmd/gstmlint -manifest MANIFEST.gsm ./examples/... ./cmd/synquake/..." >&2
    exit 1
fi

echo "== benchdiff (micro set vs committed baseline) =="
./scripts/benchdiff.sh

echo "all checks passed"
