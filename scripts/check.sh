#!/usr/bin/env bash
# check.sh — the repository's pre-merge gate (see ROADMAP.md).
#
# Runs, in order: formatting, go vet (including the -copylocks guard
# backing tl2.Var/libtm.Obj's no-copy contract), build + full test
# suite, the race detector over both STM runtimes, and gstmlint (the
# STM-aware transaction-safety linter, checks gstm001..gstm007,
# including the interprocedural gstm006 over the module-wide call
# graph). Exits non-zero on the first failure. CI runs this same
# script (.github/workflows/ci.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== build + tests =="
go build ./...
go test ./...

echo "== race detector (STM runtimes) =="
go test -race ./internal/tl2 ./internal/libtm

echo "== gstmlint =="
go run ./cmd/gstmlint ./...

echo "all checks passed"
