// Pipeline: the paper's full methodology end to end on one workload —
// profile a contended counter service, build the Thread State Automaton,
// analyze its guidance metric, then run the same workload guided and
// unguided and compare execution-time variance, non-determinism and
// abort counts.
//
// This is the programmatic equivalent of:
//
//	gstm -op mcmc_data && gstm -op analyze && gstm -op model && gstm -op default
package main

import (
	"fmt"
	"sync"
	"time"

	"gstm"
	"gstm/internal/stats"
)

const (
	threads     = 8
	opsPerRun   = 400
	profileRuns = 12
	measureRuns = 12
)

// workload is a skewed counter service: most increments hit a hot pair
// of counters (transactions 0 and 1), a few hit a cold spread
// (transaction 2). The skew is what gives the model its bias.
func workload(s *gstm.STM) ([]time.Duration, error) {
	hot := []*gstm.Var{gstm.NewVar(0), gstm.NewVar(0)}
	cold := gstm.NewArray(64, 0)
	times := make([]time.Duration, threads)
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			start := time.Now()
			rng := uint64(worker)*2654435761 + 1
			for i := 0; i < opsPerRun; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				var err error
				switch {
				case rng%10 < 6: // 60%: hot counter 0
					err = s.Atomic(uint16(worker), 0, func(tx *gstm.Tx) error {
						tx.Write(hot[0], tx.Read(hot[0])+1)
						return nil
					})
				case rng%10 < 9: // 30%: hot counter 1
					err = s.Atomic(uint16(worker), 1, func(tx *gstm.Tx) error {
						tx.Write(hot[1], tx.Read(hot[1])+1)
						return nil
					})
				default: // 10%: cold spread
					slot := int(rng>>20) % 64
					err = s.Atomic(uint16(worker), 2, func(tx *gstm.Tx) error {
						cold.Set(tx, slot, cold.Get(tx, slot)+1)
						return nil
					})
				}
				if err != nil {
					errs[worker] = err
					return
				}
			}
			times[worker] = time.Since(start)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return times, nil
}

// measure runs the workload measureRuns times against STMs prepared by
// prep and reports per-thread time stddev (averaged), distinct states
// and total aborts.
func measure(prep func(*gstm.STM) *gstm.Collector) (avgSD float64, states int, aborts uint64, err error) {
	perThread := make([][]float64, threads)
	var keys []string
	for run := 0; run < measureRuns; run++ {
		s := gstm.New(gstm.Options{})
		col := prep(s)
		times, werr := workload(s)
		if werr != nil {
			return 0, 0, 0, werr
		}
		for t, d := range times {
			perThread[t] = append(perThread[t], d.Seconds())
		}
		seq, _ := col.Sequence()
		for _, st := range seq {
			keys = append(keys, st.Key())
		}
		aborts += s.Aborts()
	}
	var sdSum float64
	for _, xs := range perThread {
		sdSum += stats.StdDev(xs)
	}
	return sdSum / threads, stats.DistinctStates(keys), aborts, nil
}

func main() {
	fmt.Println("== phase 1: profile execution ==")
	m, err := gstm.Profile(profileRuns, threads, func(s *gstm.STM) error {
		_, werr := workload(s)
		return werr
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("model: %d states, %d transitions, %d bytes encoded\n",
		m.NumStates(), m.NumEdges(), m.EncodedSize())

	fmt.Println("\n== phase 2: model analysis ==")
	report := gstm.AnalyzeModel(m, 0)
	fmt.Println(report)

	fmt.Println("\n== phase 3: default execution ==")
	defSD, defStates, defAborts, err := measure(func(s *gstm.STM) *gstm.Collector {
		col := gstm.NewCollector()
		s.SetTracer(col)
		return col
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("avg thread-time stddev: %.6fs, states: %d, aborts: %d\n",
		defSD, defStates, defAborts)

	if !report.Fit {
		fmt.Println("\nmodel rejected by the analyzer — guided execution would only add")
		fmt.Println("overhead here (the paper's ssca2 case); stopping as the framework does.")
		return
	}

	fmt.Println("\n== phase 4: guided execution ==")
	ctrl := gstm.NewController(m, 0, 0)
	guidSD, guidStates, guidAborts, err := measure(func(s *gstm.STM) *gstm.Collector {
		col := gstm.NewCollector()
		gstm.Guide(s, ctrl, col)
		return col
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("avg thread-time stddev: %.6fs, states: %d, aborts: %d\n",
		guidSD, guidStates, guidAborts)
	gs := ctrl.Stats()
	fmt.Printf("gate: %d admits, %d holds, %d escapes\n", gs.Admits, gs.Holds, gs.Escapes)

	fmt.Println("\n== comparison (guided vs default) ==")
	fmt.Printf("variance reduction:        %+.1f%%\n", stats.PercentImprovement(defSD, guidSD))
	fmt.Printf("non-determinism reduction: %+.1f%% (%d → %d states)\n",
		stats.PercentImprovement(float64(defStates), float64(guidStates)), defStates, guidStates)
	fmt.Printf("abort reduction:           %+.1f%% (%d → %d)\n",
		stats.PercentImprovement(float64(defAborts), float64(guidAborts)), defAborts, guidAborts)
}
