// Game: a SynQuake session showing the paper's second result — reducing
// multiplayer frame-rate variance. The example trains the state model
// on the 4worst_case and 4moving quests, then plays the 4quadrants
// quest twice (default, then guided) and reports frame-time statistics.
//
// This exercises the LibTM object STM (fully-optimistic detection with
// abort-readers resolution, the paper's configuration) rather than TL2.
package main

import (
	"fmt"
	"log"

	"gstm/internal/synquake"
)

func main() {
	e := synquake.Experiment{
		TrainScenarios: []string{"4worst_case", "4moving"},
		TestScenario:   "4quadrants",
		Players:        200,
		MapSize:        512,
		Threads:        8,
		TrainFrames:    40,
		TestFrames:     60,
		Runs:           3,
		Seed:           42,
	}

	fmt.Println("training on 4worst_case + 4moving...")
	out, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model: %d states; analyzer: %v\n", out.Model.NumStates(), out.Analysis)
	fmt.Println()
	fmt.Println("playing 4quadrants:")
	fmt.Printf("  default: mean frame %.3fms, stddev %.3fms, abort ratio %.3f\n",
		out.Default.MeanFrame()*1e3, out.Default.FrameStdDev()*1e3, out.Default.AbortRatio())
	fmt.Printf("  guided:  mean frame %.3fms, stddev %.3fms, abort ratio %.3f\n",
		out.Guided.MeanFrame()*1e3, out.Guided.FrameStdDev()*1e3, out.Guided.AbortRatio())
	fmt.Println()
	fmt.Printf("frame-rate variance improvement: %+.1f%%\n", out.FrameVarianceImprovement)
	fmt.Printf("abort-ratio reduction:           %+.1f%%\n", out.AbortRatioReduction)
	fmt.Printf("slowdown:                        %.2fx\n", out.Slowdown)
	gs := out.Guided.Guide
	fmt.Printf("gate decisions: %d admits, %d holds, %d escapes, %d unknown-state passes\n",
		gs.Admits, gs.Holds, gs.Escapes, gs.UnknownPasses)
}
