// Quickstart: the smallest useful gstm program. Eight goroutines
// transfer money between accounts transactionally; the program then
// verifies that the STM never lost or invented a cent, and prints the
// abort statistics that motivate the rest of the library.
package main

import (
	"fmt"
	"log"
	"sync"

	"gstm"
)

const (
	accounts = 16
	initial  = 1_000
	workers  = 8
	transfer = 500 // transfers per worker
)

func main() {
	s := gstm.New(gstm.Options{})
	bank := gstm.NewArray(accounts, initial)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := uint64(worker + 1)
			for i := 0; i < transfer; i++ {
				// xorshift for cheap deterministic account picking
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				from := int(rng % accounts)
				to := int((rng >> 16) % accounts)
				amount := int64(rng % 100)

				// The transaction: move `amount` from one account to
				// another unless it would overdraw. txID 0 is this
				// program's only static transaction.
				err := s.Atomic(uint16(worker), 0, func(tx *gstm.Tx) error {
					balance := bank.Get(tx, from)
					if balance < amount {
						return nil // insufficient funds: commit a no-op
					}
					bank.Set(tx, from, balance-amount)
					bank.Set(tx, to, bank.Get(tx, to)+amount)
					return nil
				})
				if err != nil {
					log.Fatalf("transfer failed: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for _, b := range bank.Snapshot() {
		if b < 0 {
			log.Fatalf("negative balance %d — isolation broken", b)
		}
		total += b
	}
	fmt.Printf("final total: %d (expected %d)\n", total, accounts*initial)
	fmt.Printf("commits: %d, aborts: %d (aborts are the variance source the\n",
		s.Commits(), s.Aborts())
	fmt.Println("model-driven guide in examples/pipeline learns to avoid)")
	if total != accounts*initial {
		log.Fatal("money not conserved")
	}
}
