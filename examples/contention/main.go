// Contention: compares the classic contention managers (Polite, Karma,
// Greedy) against stock TL2 and against model-driven guidance on one
// contended workload — the comparison behind the paper's Section IX
// argument that managers optimize throughput while guidance optimizes
// variance.
package main

import (
	"fmt"
	"sync"
	"time"

	"gstm"
	"gstm/internal/stats"
)

const (
	threads = 6
	ops     = 300
	runs    = 10
)

// workload hammers a small hot array — the contention pattern managers
// were designed for.
func workload(s *gstm.STM) []time.Duration {
	hot := gstm.NewArray(4, 0)
	times := make([]time.Duration, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			start := time.Now()
			rng := uint64(worker)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < ops; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				slot := int(rng % 4)
				_ = s.Atomic(uint16(worker), uint16(slot), func(tx *gstm.Tx) error {
					// Read-modify-write with some work in between, so
					// conflicts are frequent and aborts expensive.
					v := hot.Get(tx, slot)
					acc := v
					for k := 0; k < 500; k++ {
						acc = acc*6364136223846793005 + 1442695040888963407
					}
					hot.Set(tx, slot, v+1+acc%1) // acc%1 == 0: keep the count exact
					return nil
				})
			}
			times[worker] = time.Since(start)
		}(w)
	}
	wg.Wait()
	return times
}

// measure runs the workload repeatedly under prep and reports mean
// time, thread-time stddev, and total aborts.
func measure(name string, prep func(*gstm.STM)) (meanMS, sdMS float64, aborts uint64) {
	perThread := make([][]float64, threads)
	var meanSum float64
	for r := 0; r < runs; r++ {
		s := gstm.New(gstm.Options{})
		prep(s)
		times := workload(s)
		for t, d := range times {
			perThread[t] = append(perThread[t], d.Seconds())
			meanSum += d.Seconds()
		}
		aborts += s.Aborts()
	}
	var sdSum float64
	for _, xs := range perThread {
		sdSum += stats.StdDev(xs)
	}
	return meanSum / float64(runs*threads) * 1e3, sdSum / threads * 1e3, aborts
}

func main() {
	fmt.Printf("%-22s %10s %12s %10s\n", "configuration", "mean (ms)", "sd (ms)", "aborts")

	configs := []struct {
		name string
		prep func(*gstm.STM)
	}{
		{"stock TL2", func(*gstm.STM) {}},
		{"polite CM", func(s *gstm.STM) { s.SetContentionManager(&gstm.Polite{}) }},
		{"karma CM", func(s *gstm.STM) { s.SetContentionManager(&gstm.Karma{}) }},
		{"greedy CM", func(s *gstm.STM) { s.SetContentionManager(&gstm.Greedy{}) }},
	}
	for _, c := range configs {
		mean, sd, aborts := measure(c.name, c.prep)
		fmt.Printf("%-22s %10.3f %12.4f %10d\n", c.name, mean, sd, aborts)
	}

	// Guided execution: train a model on the same workload first.
	m, err := gstm.Profile(8, threads, func(s *gstm.STM) error {
		workload(s)
		return nil
	})
	if err != nil {
		panic(err)
	}
	rep := gstm.AnalyzeModel(m, 0)
	fmt.Printf("\nmodel: %d states; %v\n", m.NumStates(), rep)
	ctrl := gstm.NewController(m, 0, 0)
	mean, sd, aborts := measure("guided", func(s *gstm.STM) {
		gstm.Guide(s, ctrl, nil)
	})
	fmt.Printf("%-22s %10.3f %12.4f %10d\n", "guided STM", mean, sd, aborts)
	gs := ctrl.Stats()
	fmt.Printf("\ngate decisions: %d admits, %d holds, %d escapes\n",
		gs.Admits, gs.Holds, gs.Escapes)
	fmt.Println("\nContention managers chase throughput (fewer aborts, lower mean);")
	fmt.Println("the guide chases repeatability (tighter per-thread distributions).")
}
