// Reservation: a vacation-style booking service (the workload family of
// STAMP's vacation) written directly against the public API. Client
// goroutines reserve and cancel seats across flights held in
// transactional maps while an auditor transaction continuously checks
// the books balance — demonstrating transactional maps, multi-structure
// atomicity, and user-level aborts (error returns).
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"gstm"
)

const (
	flights  = 24
	seats    = 30 // per flight
	clients  = 6
	requests = 400 // per client
)

// errSoldOut is a user-level abort: the transaction rolls back and is
// not retried.
var errSoldOut = errors.New("sold out")

func main() {
	s := gstm.New(gstm.Options{})

	// free[f] = remaining seats on flight f.
	free := gstm.NewArray(flights, seats)
	// bookings maps bookingID → flight+1 (0 is the map's "absent").
	bookings := gstm.NewMap(clients * requests)
	// sold counts total successful bookings.
	sold := gstm.NewVar(0)

	var wg sync.WaitGroup
	var soldOut, cancelled int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := uint64(client)*0x9e3779b97f4a7c15 + 7
			myBookings := []int64{}
			for r := 0; r < requests; r++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				flight := int(rng % flights)
				bookingID := int64(client*requests + r)

				if rng%5 == 0 && len(myBookings) > 0 {
					// Cancel an old booking (transaction 1).
					victim := myBookings[int(rng>>8)%len(myBookings)]
					err := s.Atomic(uint16(client), 1, func(tx *gstm.Tx) error {
						packed, ok := bookings.Get(tx, victim)
						if !ok {
							return nil
						}
						bookings.Delete(tx, victim)
						f := int(packed - 1)
						free.Set(tx, f, free.Get(tx, f)+1)
						tx.Write(sold, tx.Read(sold)-1)
						return nil
					})
					if err != nil {
						log.Fatalf("cancel: %v", err)
					}
					mu.Lock()
					cancelled++
					mu.Unlock()
					continue
				}

				// Book a seat (transaction 0); errSoldOut aborts without
				// retry.
				err := s.Atomic(uint16(client), 0, func(tx *gstm.Tx) error {
					remaining := free.Get(tx, flight)
					if remaining == 0 {
						return errSoldOut
					}
					free.Set(tx, flight, remaining-1)
					bookings.Put(tx, bookingID, int64(flight)+1)
					tx.Write(sold, tx.Read(sold)+1)
					return nil
				})
				switch {
				case errors.Is(err, errSoldOut):
					mu.Lock()
					soldOut++
					mu.Unlock()
				case err != nil:
					log.Fatalf("book: %v", err)
				default:
					myBookings = append(myBookings, bookingID)
				}
			}
		}(c)
	}

	// Auditor: read-only transactions that must always see a balanced
	// book (free + sold == total), concurrent with the clients. Its
	// transaction ID (10) is unique module-wide so the effect manifest
	// (gstmlint -manifest) can certify it readonly — certification is
	// granted per ID, and an ID shared with any writing site anywhere
	// in the analyzed packages is poisoned.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			var totalFree, totalSold int64
			err := s.Atomic(clients, 10, func(tx *gstm.Tx) error {
				totalFree = 0
				for f := 0; f < flights; f++ {
					totalFree += free.Get(tx, f)
				}
				totalSold = tx.Read(sold)
				return nil
			})
			if err != nil {
				log.Fatalf("audit: %v", err)
			}
			if totalFree+totalSold != flights*seats {
				log.Fatalf("audit failed mid-run: free %d + sold %d != %d",
					totalFree, totalSold, flights*seats)
			}
		}
	}()

	wg.Wait()
	<-done

	var totalFree int64
	for _, f := range free.Snapshot() {
		totalFree += f
	}
	fmt.Printf("flights: %d x %d seats; booked: %d, sold out: %d, cancelled: %d\n",
		flights, seats, sold.Value(), soldOut, cancelled)
	fmt.Printf("books balance: %d free + %d sold = %d (expected %d)\n",
		totalFree, sold.Value(), totalFree+sold.Value(), flights*seats)
	fmt.Printf("commits: %d, aborts: %d\n", s.Commits(), s.Aborts())
	if totalFree+sold.Value() != flights*seats {
		log.Fatal("books do not balance")
	}
}
