package gstm

// Multi-core scalability suite for the zero-alloc commit paths: the
// BenchmarkScale* family is run by scripts/bench.sh's fifth stanza
// with `-cpu 1,2,4,8 -benchmem`, which records ns/op, allocs/op and
// the speedup relative to the 1-core row of the same benchmark into
// BENCH_scale.json. The matrix covers both runtimes (TL2 under the
// global and the sharded commit clock, LibTM on the pooled descriptor
// path), the guide-gated commit path, and the batch-commit envelopes.
//
// The TestScale*AllocFree companions pin the tentpole's allocation
// claims with testing.AllocsPerRun (meaningless under -race, so they
// skip there): the LibTM RMW path, the TL2 sharded RMW path and the
// gate-admission path must stay at exactly zero allocations per
// transaction.

import (
	"sync/atomic"
	"testing"

	"gstm/internal/effect"
	"gstm/internal/guide"
	"gstm/internal/libtm"
	"gstm/internal/model"
	"gstm/internal/tl2"
	"gstm/internal/tts"
)

// scaleSlots is the size of the per-worker location pools: comfortably
// above any -cpu value the suite runs so parallel workers touch
// disjoint locations (the clock/pool machinery, not data conflicts,
// is what the disjoint benchmarks measure).
const scaleSlots = 64

// workerIDs hands each RunParallel goroutine a stable small integer,
// used both as the thread ID (which picks the commit-clock shard) and
// as the disjoint-location index.
type workerIDs struct{ next atomic.Uint32 }

func (w *workerIDs) get() uint16 { return uint16(w.next.Add(1)-1) % scaleSlots }

// clockModes enumerates the TL2 commit-clock organizations the scale
// matrix compares.
var clockModes = []struct {
	name string
	mode tl2.ClockMode
}{
	{"global", tl2.ClockGlobal},
	{"sharded", tl2.ClockSharded},
}

// BenchmarkScaleTL2RMW: disjoint read-modify-write transactions — no
// data conflicts, so the shared commit clock is the only cross-thread
// cache line and the global-vs-sharded delta isolates its cost.
func BenchmarkScaleTL2RMW(b *testing.B) {
	for _, cm := range clockModes {
		b.Run(cm.name, func(b *testing.B) {
			s := tl2.New(tl2.Options{YieldEvery: -1, ClockMode: cm.mode})
			vars := make([]*tl2.Var, scaleSlots)
			for i := range vars {
				vars[i] = tl2.NewVar(0)
			}
			var ids workerIDs
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := ids.get()
				v := vars[id]
				for pb.Next() {
					_ = s.Atomic(id, id, func(tx *tl2.Tx) error {
						tx.Write(v, tx.Read(v)+1)
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkScaleTL2ReadOnly: a shared 10-element scan per transaction.
// Read-only commits never touch the clock's write side, so both clock
// modes should scale; the sharded rows additionally exercise the
// per-shard begin-time sampling on every transaction.
func BenchmarkScaleTL2ReadOnly(b *testing.B) {
	for _, cm := range clockModes {
		b.Run(cm.name, func(b *testing.B) {
			s := tl2.New(tl2.Options{YieldEvery: -1, ClockMode: cm.mode})
			a := tl2.NewArray(10, 1)
			var ids workerIDs
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := ids.get()
				for pb.Next() {
					_ = s.Atomic(id, id, func(tx *tl2.Tx) error {
						var sum int64
						for j := 0; j < 10; j++ {
							sum += a.Get(tx, j)
						}
						_ = sum
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkScaleTL2ContendedCounter: every thread increments one
// shared counter — the worst case for any clock organization because
// data conflicts serialize commits anyway. The sharded rows measure
// what the per-shard clocks recover once the global clock's fetch-add
// is off the commit path (BENCH_scale.json's acceptance row at -cpu 8).
func BenchmarkScaleTL2ContendedCounter(b *testing.B) {
	for _, cm := range clockModes {
		b.Run(cm.name, func(b *testing.B) {
			s := tl2.New(tl2.Options{ClockMode: cm.mode})
			v := tl2.NewVar(0)
			var ids workerIDs
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := ids.get()
				for pb.Next() {
					_ = s.Atomic(id, id, func(tx *tl2.Tx) error {
						tx.Write(v, tx.Read(v)+1)
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkScaleLibTMRMW: disjoint read-modify-writes over LibTM's
// pooled descriptor path (fully optimistic mode), the runtime's
// zero-alloc acceptance row.
func BenchmarkScaleLibTMRMW(b *testing.B) {
	s := libtm.New(libtm.Options{Mode: libtm.FullyOptimistic, YieldEvery: -1})
	objs := make([]*libtm.Obj, scaleSlots)
	for i := range objs {
		objs[i] = libtm.NewObj(0)
	}
	var ids workerIDs
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := ids.get()
		o := objs[id]
		for pb.Next() {
			_ = s.Atomic(id, id, func(tx *libtm.Tx) error {
				tx.Write(o, tx.Read(o)+1)
				return nil
			})
		}
	})
}

// scaleGateModel builds a synthetic TSA admitting the suite's worker
// pairs in forward and reverse order (the same shape the explorer's
// guided path uses), so the gate answers from a known model while the
// hold machinery stays reachable on out-of-model interleavings.
func scaleGateModel(workers int) *model.TSA {
	ps := make([]tts.Pair, workers)
	for i := range ps {
		ps[i] = tts.Pair{Tx: uint16(i), Thread: uint16(i)}
	}
	fwd := make([]tts.State, len(ps))
	rev := make([]tts.State, len(ps))
	for i, p := range ps {
		fwd[i] = tts.State{Commit: p}
		rev[len(ps)-1-i] = tts.State{Commit: p}
	}
	var run []tts.State
	for i := 0; i < 4; i++ {
		run = append(run, fwd...)
		run = append(run, rev...)
	}
	return model.Build(len(ps), run).Prune(4)
}

// BenchmarkScaleGateAdmission: the guide-gated commit path end to end
// — Admit consults the model snapshot, OnCommit advances the automaton
// through the per-state snapshot cache — under disjoint RMW load. The
// tentpole pins this path at zero allocations per transaction.
func BenchmarkScaleGateAdmission(b *testing.B) {
	const workers = 8
	ctrl := guide.New(scaleGateModel(workers), guide.Options{K: 1, HealthWindow: -1})
	s := tl2.New(tl2.Options{YieldEvery: -1})
	s.SetGate(ctrl)
	s.SetTracer(ctrl)
	vars := make([]*tl2.Var, workers)
	for i := range vars {
		vars[i] = tl2.NewVar(0)
	}
	var ids workerIDs
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := ids.get() % workers
		v := vars[id]
		for pb.Next() {
			_ = s.Atomic(id, id, func(tx *tl2.Tx) error {
				tx.Write(v, tx.Read(v)+1)
				return nil
			})
		}
	})
}

// scaleBatchLen is the envelope size the batch rows coalesce: long
// enough that the once-per-envelope costs (admission, overload token,
// clock advance, lock/validate round) amortize visibly, short enough
// to stay under DefaultBatchMax in one chunk.
const scaleBatchLen = 8

// BenchmarkScaleTL2Batch: batch-commit envelopes of scaleBatchLen
// disjoint RMW bodies under the sharded clock — one clock interaction
// per envelope instead of per transaction. ns/op is per envelope;
// divide by the batch length to compare against BenchmarkScaleTL2RMW.
func BenchmarkScaleTL2Batch(b *testing.B) {
	s := tl2.New(tl2.Options{YieldEvery: -1, ClockMode: tl2.ClockSharded})
	vars := make([]*tl2.Var, scaleSlots)
	for i := range vars {
		vars[i] = tl2.NewVar(0)
	}
	var ids workerIDs
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := ids.get()
		v := vars[id]
		body := func(tx *tl2.Tx) error {
			tx.Write(v, tx.Read(v)+1)
			return nil
		}
		bodies := make([]func(*tl2.Tx) error, scaleBatchLen)
		for i := range bodies {
			bodies[i] = body
		}
		for pb.Next() {
			_ = s.AtomicBatch(id, id, bodies)
		}
	})
}

// BenchmarkScaleLibTMBatch mirrors the TL2 batch row over LibTM's
// pooled descriptors.
func BenchmarkScaleLibTMBatch(b *testing.B) {
	s := libtm.New(libtm.Options{Mode: libtm.FullyOptimistic, YieldEvery: -1})
	objs := make([]*libtm.Obj, scaleSlots)
	for i := range objs {
		objs[i] = libtm.NewObj(0)
	}
	var ids workerIDs
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := ids.get()
		o := objs[id]
		body := func(tx *libtm.Tx) error {
			tx.Write(o, tx.Read(o)+1)
			return nil
		}
		bodies := make([]func(*libtm.Tx) error, scaleBatchLen)
		for i := range bodies {
			bodies[i] = body
		}
		for pb.Next() {
			_ = s.AtomicBatch(id, id, bodies)
		}
	})
}

// allocsPerTx measures steady-state allocations per call of fn after a
// short pool warm-up (the first transactions legitimately populate the
// sync.Pool free lists and lazily sized read/write sets).
func allocsPerTx(fn func()) float64 {
	for i := 0; i < 10; i++ {
		fn()
	}
	return testing.AllocsPerRun(200, fn)
}

// skipIfRace skips allocation pins under the race detector, whose
// instrumentation allocates on its own.
func skipIfRace(t *testing.T) {
	t.Helper()
	if effect.RaceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
}

// TestScaleLibTMRMWAllocFree pins the pooled-descriptor claim on
// LibTM's general read-write path: zero allocations per transaction
// at steady state.
func TestScaleLibTMRMWAllocFree(t *testing.T) {
	skipIfRace(t)
	s := libtm.New(libtm.Options{Mode: libtm.FullyOptimistic, YieldEvery: -1})
	o := libtm.NewObj(0)
	if avg := allocsPerTx(func() {
		_ = s.Atomic(0, 0, func(tx *libtm.Tx) error {
			tx.Write(o, tx.Read(o)+1)
			return nil
		})
	}); avg != 0 {
		t.Errorf("LibTM RMW allocates %.1f/op at steady state, want 0", avg)
	}
}

// TestScaleTL2RMWAllocFree pins the same claim on TL2's read-write
// path under both commit-clock modes (the sharded mode additionally
// covers the per-shard begin-time sample array reuse).
func TestScaleTL2RMWAllocFree(t *testing.T) {
	skipIfRace(t)
	for _, cm := range clockModes {
		t.Run(cm.name, func(t *testing.T) {
			s := tl2.New(tl2.Options{YieldEvery: -1, ClockMode: cm.mode})
			v := tl2.NewVar(0)
			if avg := allocsPerTx(func() {
				_ = s.Atomic(0, 0, func(tx *tl2.Tx) error {
					tx.Write(v, tx.Read(v)+1)
					return nil
				})
			}); avg != 0 {
				t.Errorf("TL2 %s-clock RMW allocates %.1f/op at steady state, want 0", cm.name, avg)
			}
		})
	}
}

// TestScaleGateAdmissionAllocFree pins the guide-gated commit path:
// with the automaton cycling through its per-state snapshot cache,
// Admit + OnCommit must add zero allocations to the transaction.
func TestScaleGateAdmissionAllocFree(t *testing.T) {
	skipIfRace(t)
	ctrl := guide.New(scaleGateModel(2), guide.Options{K: 1, HealthWindow: -1})
	s := tl2.New(tl2.Options{YieldEvery: -1})
	s.SetGate(ctrl)
	s.SetTracer(ctrl)
	v := tl2.NewVar(0)
	if avg := allocsPerTx(func() {
		_ = s.Atomic(0, 0, func(tx *tl2.Tx) error {
			tx.Write(v, tx.Read(v)+1)
			return nil
		})
	}); avg != 0 {
		t.Errorf("gate-admitted RMW allocates %.1f/op at steady state, want 0", avg)
	}
}
