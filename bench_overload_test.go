package gstm

// Overload-control benchmarks (scripts/bench.sh writes them to
// BENCH_overload.json). Two claims:
//
//   - BenchmarkOverloadShedPath / BenchmarkOverloadShedPathStorm: the
//     shed fast path — taken precisely when the system is drowning —
//     costs a few atomic reads and zero allocations (the sentinel
//     errors are preallocated; TestShedFastPathAllocFree pins the
//     0-alloc bar outside -race builds).
//   - BenchmarkOverloadCurve: the contention-collapse curve at each
//     oversubscription factor, reported as protected vs unprotected
//     commits/tick custom metrics — the JSON record of the "protected
//     throughput holds while unprotected collapses" acceptance claim.
//
// BenchmarkOverloadAcquireRelease is the healthy-path baseline the
// shed numbers are read against: one token round trip, uncontended.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"gstm/internal/fault"
	"gstm/internal/harness"
)

// shedSaturated builds a limiter whose single token is held and whose
// execution estimate is seeded, so any deadline-bounded Acquire sheds
// on the wait forecast without entering the wait loop.
func shedSaturated(b *testing.B) *Limiter {
	b.Helper()
	lim := NewLimiter(LimiterOptions{MaxInflight: 1})
	ctx := context.Background()
	if err := lim.Acquire(ctx, PriCritical); err != nil {
		b.Fatal(err)
	}
	// Release with an old start stamp seeds the p50 execution estimate
	// the wait forecast multiplies by; re-acquire to hold the cap again.
	lim.Release(lim.Now().Add(-time.Millisecond), true)
	if err := lim.Acquire(ctx, PriCritical); err != nil {
		b.Fatal(err)
	}
	return lim
}

// BenchmarkOverloadShedPath measures the deadline-aware shed: a
// saturated limiter rejecting a call whose remaining deadline is below
// the predicted queue wait.
func BenchmarkOverloadShedPath(b *testing.B) {
	lim := shedSaturated(b)
	ctx, cancel := context.WithDeadline(context.Background(), lim.Now().Add(time.Microsecond))
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lim.Acquire(ctx, PriNormal); !errors.Is(err, ErrShed) {
			b.Fatalf("want shed, got %v", err)
		}
	}
}

// BenchmarkOverloadShedPathStorm measures the injected-storm shed, the
// shortest path through Acquire.
func BenchmarkOverloadShedPathStorm(b *testing.B) {
	inj := fault.NewInjector(1).Set(fault.ShedStorm, fault.Rule{Every: 1})
	lim := NewLimiter(LimiterOptions{MaxInflight: 8, Inject: inj})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lim.Acquire(ctx, PriLow); !errors.Is(err, ErrShed) {
			b.Fatalf("want shed, got %v", err)
		}
	}
}

// BenchmarkOverloadAcquireRelease is the healthy-path baseline: one
// uncontended token round trip through the admission gate.
func BenchmarkOverloadAcquireRelease(b *testing.B) {
	lim := NewLimiter(LimiterOptions{MaxInflight: 8})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lim.Acquire(ctx, PriNormal); err != nil {
			b.Fatal(err)
		}
		lim.Release(lim.Now(), true)
	}
}

// BenchmarkOverloadCurve records the collapse curve: one sub-benchmark
// per oversubscription factor, each reporting the protected and
// unprotected mean commits/tick as custom metrics. scripts/bench.sh
// captures every metric column into BENCH_overload.json, so the curve
// (and its retention ratio) is diffable across PRs like any other
// benchmark number.
func BenchmarkOverloadCurve(b *testing.B) {
	for _, f := range []int{1, 2, 4, 8} {
		f := f
		b.Run(fmt.Sprintf("%dx", f), func(b *testing.B) {
			var pt harness.OversubPoint
			for i := 0; i < b.N; i++ {
				cmp := harness.CompareOversub(harness.OversubCompareOptions{
					Factors: []int{f},
					Seeds:   3,
					Ticks:   2000,
				})
				pt = cmp.Points[0]
			}
			b.ReportMetric(pt.ProtectedThr, "protected-commits/tick")
			b.ReportMetric(pt.UnprotectedThr, "unprotected-commits/tick")
			b.ReportMetric(pt.ProtectedAborts, "protected-aborts/commit")
			b.ReportMetric(pt.UnprotectedAborts, "unprotected-aborts/commit")
		})
	}
}
