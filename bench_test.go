package gstm

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper, plus micro-benchmarks of the STM primitives and ablation
// benchmarks for the design knobs called out in DESIGN.md.
//
// Each table/figure benchmark runs the corresponding experiment suite
// at a laptop-scaled configuration (the suites are cached across
// benchmarks within one `go test -bench` process) and reports the
// headline quantity via b.ReportMetric; the rendered artifact itself is
// emitted with b.Log so `go test -bench . -v` shows the same rows the
// paper reports. cmd/stampbench and cmd/synquake regenerate the same
// artifacts at paper scale.

import (
	"strings"
	"sync"
	"testing"

	"gstm/internal/harness"
	"gstm/internal/stamp"
	"gstm/internal/synquake"
)

// benchThreads are the thread counts swept by the table/figure
// benchmarks: scaled stand-ins for the paper's 8 and 16.
var benchThreads = []int{4, 8}

var (
	stampOnce sync.Once
	stampRes  harness.SuiteResult
	stampErr  error
	quakeOnce sync.Once
	quakeRes  synquake.SuiteResult
	quakeErr  error
)

// stampSuite runs (once) the full STAMP sweep used by the table/figure
// benchmarks.
func stampSuite(b *testing.B) harness.SuiteResult {
	b.Helper()
	stampOnce.Do(func() {
		stampRes, stampErr = harness.RunSuite(harness.SuiteConfig{
			Threads:     benchThreads,
			ProfileRuns: 16,
			MeasureRuns: 24,
			// The paper trains on medium inputs; we also measure on
			// medium so that abort counts (hundreds per run), not
			// scheduler noise on millisecond-scale runs, dominate the
			// measured execution-time variance. Run seeds are disjoint
			// between the phases.
			ProfileSize: stamp.Medium,
			MeasureSize: stamp.Medium,
			Seed:        1,
			// Figure 8 needs ssca2 guided despite its verdict; everything
			// else goes through the analyzer gate as in the paper.
			ForceWorkloads: []string{"ssca2"},
		}, nil)
	})
	if stampErr != nil {
		b.Fatal(stampErr)
	}
	return stampRes
}

// quakeSuite runs (once) the SynQuake sweep.
func quakeSuite(b *testing.B) synquake.SuiteResult {
	b.Helper()
	quakeOnce.Do(func() {
		quakeRes, quakeErr = synquake.RunSuite(synquake.Suite{
			Threads:     benchThreads,
			Players:     96,
			MapSize:     256,
			TrainFrames: 20,
			TestFrames:  30,
			Runs:        2,
			Seed:        1,
		}, nil)
	})
	if quakeErr != nil {
		b.Fatal(quakeErr)
	}
	return quakeRes
}

// render captures a suite artifact as a string for b.Log.
func render(f func(*strings.Builder)) string {
	var sb strings.Builder
	f(&sb)
	return sb.String()
}

func BenchmarkTableI_GuidanceMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		var worst float64
		for _, th := range res.Threads {
			if m := res.Outcomes["ssca2"][th].Analysis.Metric; m > worst {
				worst = m
			}
		}
		b.ReportMetric(worst, "ssca2-metric-%")
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) { res.RenderTableI(sb) }))
		}
	}
}

func BenchmarkTableIII_ModelStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		th := res.Threads[len(res.Threads)-1]
		b.ReportMetric(float64(res.Outcomes["intruder"][th].Model.NumStates()), "intruder-states")
		b.ReportMetric(float64(res.Outcomes["ssca2"][th].Model.NumStates()), "ssca2-states")
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) { res.RenderTableIII(sb) }))
		}
	}
}

func BenchmarkTableIV_TailImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		var sum float64
		n := 0
		for _, name := range res.Names {
			for _, th := range res.Threads {
				if c := res.Outcomes[name][th].Compared; c != nil && name != "ssca2" {
					sum += c.AvgTailImprovement()
					n++
				}
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "avg-tail-improve-%")
		}
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) { res.RenderTableIV(sb) }))
		}
	}
}

func BenchmarkTableV_SynQuakeGuidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := quakeSuite(b)
		o := res.ByScenario[res.Scenarios[0]][res.Threads[len(res.Threads)-1]]
		b.ReportMetric(o.Analysis.Metric, "guidance-metric-%")
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) { res.RenderTableV(sb) }))
		}
	}
}

// varianceImprovement averages the per-thread variance improvement of
// the fit workloads at one thread count.
func varianceImprovement(res harness.SuiteResult, threads int) float64 {
	var sum float64
	n := 0
	for _, name := range res.Names {
		if name == "ssca2" {
			continue
		}
		if c := res.Outcomes[name][threads].Compared; c != nil {
			sum += c.AvgVarianceImprovement()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func BenchmarkFigure4_Variance8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		b.ReportMetric(varianceImprovement(res, benchThreads[0]), "avg-var-improve-%")
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) {
				res.RenderVarianceFigure(sb, benchThreads[0], "4")
			}))
		}
	}
}

func BenchmarkFigure5_AbortTail8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) {
				res.RenderAbortTailFigure(sb, benchThreads[0], "5")
			}))
		}
	}
}

func BenchmarkFigure6_Variance16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		b.ReportMetric(varianceImprovement(res, benchThreads[1]), "avg-var-improve-%")
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) {
				res.RenderVarianceFigure(sb, benchThreads[1], "6")
			}))
		}
	}
}

func BenchmarkFigure7_AbortTail16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) {
				res.RenderAbortTailFigure(sb, benchThreads[1], "7")
			}))
		}
	}
}

func BenchmarkFigure8_SSCA2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		if c := res.Outcomes["ssca2"][benchThreads[0]].Compared; c != nil {
			b.ReportMetric(c.AvgVarianceImprovement(), "ssca2-var-change-%")
			b.ReportMetric(c.Slowdown, "ssca2-slowdown-x")
		}
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) { res.RenderFigure8(sb) }))
		}
	}
}

func BenchmarkFigure9_NonDeterminism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		var sum float64
		n := 0
		for _, name := range res.Names {
			if name == "ssca2" {
				continue
			}
			for _, th := range res.Threads {
				if c := res.Outcomes[name][th].Compared; c != nil {
					sum += c.NonDetReduction
					n++
				}
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "avg-nd-reduction-%")
		}
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) { res.RenderFigure9(sb) }))
		}
	}
}

func BenchmarkFigure10_Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stampSuite(b)
		var sum float64
		n := 0
		for _, name := range res.Names {
			if name == "ssca2" {
				continue
			}
			for _, th := range res.Threads {
				if c := res.Outcomes[name][th].Compared; c != nil {
					sum += c.Slowdown
					n++
				}
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "avg-slowdown-x")
		}
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) { res.RenderFigure10(sb) }))
		}
	}
}

func BenchmarkFigure11_SynQuake4Quadrants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := quakeSuite(b)
		o := res.ByScenario["4quadrants"][benchThreads[len(benchThreads)-1]]
		b.ReportMetric(o.FrameVarianceImprovement, "frame-var-improve-%")
		b.ReportMetric(o.AbortRatioReduction, "abort-ratio-reduce-%")
		b.ReportMetric(o.Slowdown, "slowdown-x")
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) {
				res.RenderQuestFigure(sb, "4quadrants", "11")
			}))
		}
	}
}

func BenchmarkFigure12_SynQuakeCenterSpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := quakeSuite(b)
		o := res.ByScenario["4center_spread6"][benchThreads[len(benchThreads)-1]]
		b.ReportMetric(o.FrameVarianceImprovement, "frame-var-improve-%")
		b.ReportMetric(o.AbortRatioReduction, "abort-ratio-reduce-%")
		b.ReportMetric(o.Slowdown, "slowdown-x")
		if i == 0 {
			b.Log("\n" + render(func(sb *strings.Builder) {
				res.RenderQuestFigure(sb, "4center_spread6", "12")
			}))
		}
	}
}
