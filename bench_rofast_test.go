package gstm

// Certified read-only fast-path benchmarks (scripts/bench.sh writes
// them to BENCH_rofast.json). Three claims, each against an existing
// baseline in bench_micro_test.go:
//
//   - BenchmarkROFastTL2Certified vs BenchmarkTL2ReadOnly10: the
//     validation-only commit (no read-set bookkeeping) must not be
//     slower than the full protocol on the same 10-read scan.
//   - BenchmarkROFastLibTMCertified vs BenchmarkLibTMModesRMW: the
//     pooled descriptor must hold LibTM at 0 allocs/op at steady state
//     (the fresh-descriptor path pays one per call).
//   - BenchmarkROFastGateBypass vs BenchmarkGateOverhead: a certified
//     pair through the guide gate must skip the snapshot/state/key
//     machinery (72 B and 3 allocs per commit on the gated RMW path).

import (
	"testing"

	"gstm/internal/effect"
	"gstm/internal/guide"
	"gstm/internal/harness"
	"gstm/internal/libtm"
	"gstm/internal/stamp"
	"gstm/internal/tl2"
)

// roFastManifest certifies one transaction ID readonly.
func roFastManifest(id uint16) *Manifest {
	return &Manifest{Sites: []EffectSite{{
		Key:   "gstm.rofast-scan@bench_rofast_test.go:1",
		Tx:    "scan",
		TxID:  int(id),
		Class: effect.ReadOnly,
	}}}
}

func BenchmarkROFastTL2Certified(b *testing.B) {
	s := tl2.New(tl2.Options{YieldEvery: -1, Manifest: roFastManifest(0)})
	a := tl2.NewArray(10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(0, 0, func(tx *tl2.Tx) error {
			var sum int64
			for j := 0; j < 10; j++ {
				sum += a.Get(tx, j)
			}
			_ = sum
			return nil
		})
	}
	if s.ROCommits() == 0 {
		b.Fatal("certified fast path did not engage")
	}
}

func BenchmarkROFastLibTMCertified(b *testing.B) {
	s := libtm.New(libtm.Options{Mode: libtm.FullyOptimistic, YieldEvery: -1, Manifest: roFastManifest(0)})
	objs := make([]*libtm.Obj, 10)
	for i := range objs {
		objs[i] = libtm.NewObj(1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(0, 0, func(tx *libtm.Tx) error {
			var sum int64
			for _, o := range objs {
				sum += tx.Read(o)
			}
			_ = sum
			return nil
		})
	}
	if s.ROCommits() == 0 {
		b.Fatal("certified fast path did not engage")
	}
}

// BenchmarkROFastGateBypass mirrors BenchmarkGateOverhead's setup (a
// trained kmeans model gating every transaction) but runs a certified
// read-only scan, so both the gate's Admit and its OnCommit take the
// certificate bypass.
func BenchmarkROFastGateBypass(b *testing.B) {
	e := harness.Experiment{
		Workload: "kmeans", Threads: 2,
		ProfileRuns: 2, MeasureRuns: 1,
		ProfileSize: stamp.Small, MeasureSize: stamp.Small, Seed: 3,
	}
	m, err := e.Profile()
	if err != nil {
		b.Fatal(err)
	}
	manifest := roFastManifest(0)
	ctrl := guide.New(m, guide.Options{K: 1, Manifest: manifest})
	s := tl2.New(tl2.Options{YieldEvery: -1, Manifest: manifest})
	s.SetGate(ctrl)
	s.SetTracer(ctrl)
	v := tl2.NewVar(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(0, 0, func(tx *tl2.Tx) error {
			_ = tx.Read(v)
			return nil
		})
	}
	if s.ROCommits() == 0 {
		b.Fatal("certified fast path did not engage")
	}
	if ctrl.Stats().ReadOnlyAdmits == 0 {
		b.Fatal("gate bypass did not engage")
	}
}
