// Command stampbench regenerates the paper's STAMP evaluation artifacts
// — Tables I–IV and Figures 4–10 — by running the full profile → model
// → analyze → guided/default pipeline for every kernel at the requested
// thread counts.
//
// Usage:
//
//	stampbench [flags]
//	  -tables 1,3,4        which tables to print (2 prints host config)
//	  -figures 4,5,...,10  which figures to print
//	  -all                 print every table and figure (default)
//	  -threads 8,16        thread counts to sweep
//	  -workloads a,b       kernels (default: all seven)
//	  -profile-runs 20 -measure-runs 20
//	  -profile-size medium -measure-size small
//	  -tfactor 4 -seed 1 -force
//
// Scale down -profile-runs/-measure-runs and use -threads 4 for quick
// smoke runs; paper-shaped output needs the defaults.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gstm/internal/harness"
	"gstm/internal/stamp"
)

func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		tablesFlag   = flag.String("tables", "", "comma-separated table numbers (1-4)")
		figuresFlag  = flag.String("figures", "", "comma-separated figure numbers (4-10)")
		allFlag      = flag.Bool("all", false, "print every table and figure")
		threadsFlag  = flag.String("threads", "8,16", "thread counts to sweep")
		workloads    = flag.String("workloads", "", "kernels (default all)")
		profileRuns  = flag.Int("profile-runs", 20, "training runs per model")
		measureRuns  = flag.Int("measure-runs", 20, "measurement runs per mode")
		profileSize  = flag.String("profile-size", "medium", "training input size")
		measureSize  = flag.String("measure-size", "small", "measurement input size")
		tfactor      = flag.Float64("tfactor", 4, "guidance threshold divisor")
		seed         = flag.Int64("seed", 1, "workload content seed")
		force        = flag.Bool("force", true, "run guided mode even for unfit models (needed for Figure 8)")
		csvPath      = flag.String("csv", "", "also write a machine-readable summary CSV to this path")
		maxprocsFlag = flag.Int("gomaxprocs", 0, "override GOMAXPROCS (0 = leave as is)")
		quiet        = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *maxprocsFlag > 0 {
		runtime.GOMAXPROCS(*maxprocsFlag)
	}

	tables, err := parseIntList(*tablesFlag)
	if err != nil {
		fatalf("parsing -tables: %v", err)
	}
	figures, err := parseIntList(*figuresFlag)
	if err != nil {
		fatalf("parsing -figures: %v", err)
	}
	if *allFlag || (len(tables) == 0 && len(figures) == 0) {
		tables = []int{1, 2, 3, 4}
		figures = []int{4, 5, 6, 7, 8, 9, 10}
	}
	threads, err := parseIntList(*threadsFlag)
	if err != nil || len(threads) == 0 {
		fatalf("parsing -threads: %v", err)
	}
	pSize, err := stamp.ParseSize(*profileSize)
	if err != nil {
		fatalf("%v", err)
	}
	mSize, err := stamp.ParseSize(*measureSize)
	if err != nil {
		fatalf("%v", err)
	}
	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	res, err := harness.RunSuite(harness.SuiteConfig{
		Threads:     threads,
		Workloads:   names,
		ProfileRuns: *profileRuns,
		MeasureRuns: *measureRuns,
		ProfileSize: pSize,
		MeasureSize: mSize,
		Tfactor:     *tfactor,
		Seed:        *seed,
		ForceAll:    *force,
	}, logf)
	if err != nil {
		fatalf("suite failed: %v", err)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatalf("creating CSV: %v", err)
		}
		if err := res.WriteSummaryCSV(f); err != nil {
			fatalf("writing CSV: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing CSV: %v", err)
		}
		fmt.Fprintf(os.Stderr, "summary CSV written to %s\n", *csvPath)
	}

	out := os.Stdout
	for _, t := range tables {
		switch t {
		case 1:
			res.RenderTableI(out)
		case 2:
			harness.RenderTableII(out, threads)
		case 3:
			res.RenderTableIII(out)
		case 4:
			res.RenderTableIV(out)
		default:
			fatalf("unknown table %d (have 1-4)", t)
		}
		fmt.Fprintln(out)
	}
	for _, f := range figures {
		switch f {
		case 4:
			res.RenderVarianceFigure(out, threads[0], "4")
		case 5:
			res.RenderAbortTailFigure(out, threads[0], "5")
		case 6:
			res.RenderVarianceFigure(out, threads[len(threads)-1], "6")
		case 7:
			res.RenderAbortTailFigure(out, threads[len(threads)-1], "7")
		case 8:
			res.RenderFigure8(out)
		case 9:
			res.RenderFigure9(out)
		case 10:
			res.RenderFigure10(out)
		default:
			fatalf("unknown figure %d (have 4-10)", f)
		}
		fmt.Fprintln(out)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stampbench: "+format+"\n", args...)
	os.Exit(1)
}
