// Command gstm is the pipeline driver, mirroring the paper artifact's
// exec.sh workflow: profile a benchmark to generate the state model
// (the artifact's mcmc_data option), analyze it, then run guided
// (model) or default executions and report timings, variance,
// non-determinism and abort distributions.
//
// Usage:
//
//	gstm -bench kmeans -threads 8 -runs 20 -op mcmc_data -model state_data
//	gstm -bench kmeans -threads 8 -op analyze -model state_data
//	gstm -bench kmeans -threads 8 -runs 20 -op model   -model state_data
//	gstm -bench kmeans -threads 8 -runs 20 -op default
//	gstm -bench kmeans -threads 8 -runs 20 -op ND_mcmc -model state_data
//	gstm -bench kmeans -threads 8 -runs 20 -op ND_only
//
// Options mirror the artifact: mcmc_data generates the model; model
// runs guided STM; default runs unmodified STM; ND_mcmc / ND_only
// report non-determinism data for guided / default runs. The -freq flag
// is the paper's Tfactor (usually 4).
//
// Cold start: -op coldstart measures guidance served from a static
// prior (gstmlint -prior) with no trained model — the controller
// streams a live model and blends over as commits accumulate
// (-blend-evidence tunes the hand-over) — and reports it against
// default execution, plus against profiled guidance when -model names
// an existing trained model.
//
// Online guidance: -op online runs the drifting-workload simulator
// three ways — passthrough, a frozen offline-profiled model, and the
// continuously-learning online controller — and reports post-shift
// variance, aborts and guard activity side by side. -epoch-events,
// -state-budget and -drift-trip tune the learner; -runs is the seed
// count.
//
// Overload control: -op overload measures the contention-collapse
// curve — the same seeded oversubscription workload at 1×/2×/4×/8×
// with and without the AIMD admission controller — and reports
// throughput retention side by side. -max-inflight sets the in-flight
// cap (0 = 2×cores for the curve; for the measure ops, 0 leaves the
// limiter off entirely), -limiter picks aimd or fixed, and -shed is
// the tolerated shed fraction: a run whose admission rejections exceed
// it — or a measured run that fails with ErrShed — exits with code 6
// (shed-exhausted). The new fault classes (load-spike, limiter-stall,
// shed-storm) compose: `-op overload -fault shed-storm:~500 -shed 0.1`
// demonstrates the shed exit path deterministically.
//
// Robustness knobs: -fault injects deterministic faults (see
// fault.ParseSpec; e.g. "commit-abort:50,hold-stall:~10:1ms"),
// -fault-seed fixes the injection schedule, and -health-window /
// -relax-factor / -rearm-windows tune the guided controller's
// degradation ladder. Progress knobs: -deadline bounds every Atomic
// call, -escalate-after sets the irrevocable-escalation abort
// threshold, -watchdog-window tunes the livelock watchdog. Model and
// trace files are written atomically (temp file + fsync + rename).
// Exit codes: 1 unexpected, 2 usage, 3 file I/O, 4 pipeline failure,
// 5 transaction deadline exceeded, 6 shed-exhausted (admission control
// rejected the run or more than the -shed budget).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"

	"gstm/internal/analyze"
	"gstm/internal/effect"
	"gstm/internal/fault"
	"gstm/internal/guide"
	"gstm/internal/harness"
	"gstm/internal/model"
	"gstm/internal/overload"
	"gstm/internal/safeio"
	"gstm/internal/stamp"
	"gstm/internal/tl2"
	"gstm/internal/trace"
	"gstm/internal/tts"
)

// Exit codes: scripts driving the artifact can tell a typo from a
// broken disk from a failed experiment.
const (
	exitUsage    = 2
	exitIO       = 3
	exitPipeline = 4
	exitDeadline = 5
	exitShed     = 6
)

func main() {
	var (
		bench        = flag.String("bench", "kmeans", "benchmark: "+fmt.Sprint(harness.WorkloadNames))
		threads      = flag.Int("threads", 8, "worker thread count")
		runs         = flag.Int("runs", 20, "number of runs")
		op           = flag.String("op", "default", "operation: mcmc_data|analyze|model|default|ND_mcmc|ND_only|coldstart|online|overload|inspect|dot|trace")
		modelPath    = flag.String("model", "state_data", "model file path")
		staticPrior  = flag.String("static-prior", "", "cold-start model synthesized by gstmlint -prior (required by -op coldstart)")
		blendEv      = flag.Int("blend-evidence", 0, "commits to decay the static prior's weight to zero (0 = default, <0 = prior-only)")
		freq         = flag.Float64("freq", 4, "Tfactor: guidance threshold divisor")
		k            = flag.Int("k", 0, "guide progress-escape retries (0 = default)")
		sizeFlag     = flag.String("size", "", "input size override (small|medium|large)")
		seed         = flag.Int64("seed", 1, "workload content seed")
		maxprocs     = flag.Int("gomaxprocs", 0, "override GOMAXPROCS (0 = leave as is)")
		faultSpec    = flag.String("fault", "", "fault injection spec, e.g. commit-abort:50,hold-stall:~10:1ms")
		faultSeed    = flag.Uint64("fault-seed", 1, "seed for the deterministic fault schedule")
		healthWindow = flag.Int("health-window", 0, "health monitor window in admits (0 = default, <0 = disable)")
		relaxFactor  = flag.Float64("relax-factor", 0, "Tfactor multiplier at the relaxed ladder level (0 = default)")
		rearmWindows = flag.Int("rearm-windows", 0, "healthy windows before re-arming a tripped ladder (0 = default)")
		manifestPath = flag.String("manifest", "", "sealed static-effect manifest (gstmlint -manifest); certified-readonly transactions take the fast-path commit and bypass the gate")
		epochEvents  = flag.Int("epoch-events", 0, "online learner epoch length in events (0 = default)")
		stateBudget  = flag.Int("state-budget", 0, "online learner accumulator state budget (0 = default)")
		driftTrip    = flag.Float64("drift-trip", 0, "online learner divergence quarantine threshold in [0,1] (0 = default)")
		deadline     = flag.Duration("deadline", 0, "per-Atomic-call deadline (0 = none); a miss exits with code 5")
		maxInflight  = flag.Int("max-inflight", 0, "admission-controlled in-flight transaction cap (0 = limiter off; for -op overload, 0 = 2x cores)")
		limiterMode  = flag.String("limiter", "aimd", "limit policy: aimd (adaptive) or fixed")
		shedBudget   = flag.Float64("shed", 1, "tolerated shed fraction of admission attempts; exceeding it exits with code 6")
		escAfter     = flag.Int("escalate-after", 0, "aborts before irrevocable escalation (0 = default, <0 = disable)")
		watchdogWin  = flag.Duration("watchdog-window", 0, "livelock watchdog sampling window (0 = default, <0 = disable)")
	)
	flag.Parse()

	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	var inj *fault.Injector
	if *faultSpec != "" {
		var err error
		inj, err = fault.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			fatalf(exitUsage, "%v", err)
		}
	}
	gopts := guide.Options{
		HealthWindow: *healthWindow,
		RelaxFactor:  *relaxFactor,
		RearmWindows: *rearmWindows,
	}
	limMode, err := overload.ParseMode(*limiterMode)
	if err != nil {
		fatalf(exitUsage, "%v", err)
	}

	e := harness.Experiment{
		Workload:       *bench,
		Threads:        *threads,
		ProfileRuns:    *runs,
		MeasureRuns:    *runs,
		Tfactor:        *freq,
		K:              *k,
		Seed:           *seed,
		Inject:         inj,
		Guide:          gopts,
		TxDeadline:     *deadline,
		EscalateAfter:  *escAfter,
		WatchdogWindow: *watchdogWin,
	}
	if *sizeFlag != "" {
		sz, err := stamp.ParseSize(*sizeFlag)
		if err != nil {
			fatalf(exitUsage, "%v", err)
		}
		e.ProfileSize, e.MeasureSize = sz, sz
	}
	if *manifestPath != "" {
		m, err := effect.ReadFile(*manifestPath)
		if err != nil {
			fatalf(exitIO, "loading manifest: %v", err)
		}
		e.Manifest = m
	}
	if *maxInflight > 0 {
		e.Overload = overload.New(overload.Options{
			MaxInflight: *maxInflight,
			Mode:        limMode,
			Inject:      inj,
		})
	}

	switch *op {
	case "mcmc_data", "profile":
		m, err := e.Profile()
		if err != nil {
			fatalf(exitPipeline, "profiling: %v", err)
		}
		if err := safeio.WriteFileAtomic(*modelPath, m.Encode); err != nil {
			fatalf(exitIO, "writing model: %v", err)
		}
		rep := analyze.Analyze(m, analyze.Options{Tfactor: *freq})
		fmt.Printf("model written to %s: %d states, %d bytes\n", *modelPath,
			m.NumStates(), m.EncodedSize())
		fmt.Println(rep)

	case "analyze":
		m := loadModel(*modelPath)
		fmt.Println(analyze.Analyze(m, analyze.Options{Tfactor: *freq}))
		st := m.Structure()
		fmt.Printf("structure: %d states (%d with aborts, max tuple %d), %d edges, "+
			"%d terminal, out-degree avg %.1f max %d\n",
			st.States, st.AbortStates, st.MaxAbortsInState, st.Edges,
			st.TerminalStates, st.AvgOutDegree, st.MaxOutDegree)

	case "inspect":
		m := loadModel(*modelPath)
		fmt.Print(m.Dump(20))

	case "dot":
		m := loadModel(*modelPath)
		if err := m.WriteDOT(os.Stdout, model.DOTOptions{Tfactor: *freq, MaxStates: 40}); err != nil {
			fatalf(exitIO, "writing DOT: %v", err)
		}

	case "trace":
		// Record one run's transaction sequence to the -model path (the
		// artifact's per-run sequence files).
		seq, err := recordOneRun(e)
		if err != nil {
			fatalf(exitPipeline, "tracing: %v", err)
		}
		if err := safeio.WriteFileAtomic(*modelPath, func(w io.Writer) error {
			return trace.WriteSequence(w, seq)
		}); err != nil {
			fatalf(exitIO, "writing trace: %v", err)
		}
		fmt.Printf("trace written to %s: %d states\n", *modelPath, len(seq))

	case "model", "ND_mcmc":
		m := loadModel(*modelPath)
		rep := analyze.Analyze(m, analyze.Options{Tfactor: *freq})
		if !rep.Fit {
			fmt.Fprintf(os.Stderr, "warning: %v — guiding anyway\n", rep)
		}
		g := gopts
		g.Tfactor, g.K, g.Inject = *freq, *k, inj
		ctrl := guide.New(m.Prune(*freq), g)
		res, err := e.Measure(ctrl)
		if err != nil {
			fatalf(measureExitCode(err), "guided run: %v", err)
		}
		printSummary("guided", *bench, res, *op == "ND_mcmc")
		reportLimiter(res.Overload, *shedBudget)
		gs := res.Guide
		fmt.Printf("gate: %d admits, %d holds, %d escapes, %d unknown-state passes, %d irrevocable admits\n",
			gs.Admits, gs.Holds, gs.Escapes, gs.UnknownPasses, gs.IrrevocableAdmits)
		fmt.Printf("health: level %s, %d degradations, %d re-arms, %d relaxed admits, %d passthrough admits\n",
			gs.Level, gs.Degradations, gs.Rearms, gs.RelaxedAdmits, gs.PassthroughAdmits)
		harness.RenderStarvation(os.Stdout, gs)
		if inj != nil {
			fmt.Printf("faults: %s\n", inj.Counts())
		}

	case "coldstart":
		if *staticPrior == "" {
			fatalf(exitUsage, "-op coldstart requires -static-prior (generate with gstmlint -prior)")
		}
		prior := loadModel(*staticPrior)
		if prior.Threads != *threads {
			fmt.Fprintf(os.Stderr, "warning: prior materialized for %d threads, running %d (regenerate with gstmlint -prior-threads %d)\n",
				prior.Threads, *threads, *threads)
		}
		def, err := e.Measure(nil)
		if err != nil {
			fatalf(measureExitCode(err), "default run: %v", err)
		}
		printSummary("default", *bench, def, false)

		g := gopts
		g.Tfactor, g.K, g.Inject = *freq, *k, inj
		g.Prior, g.BlendEvidence = prior, *blendEv
		ctrl := guide.New(nil, g)
		cold, err := e.Measure(ctrl)
		if err != nil {
			fatalf(measureExitCode(err), "cold-start run: %v", err)
		}
		printSummary("coldstart", *bench, cold, false)
		gs := cold.Guide
		fmt.Printf("blend: prior weight %.2f after %d commits of evidence; %d admits, %d holds, %d escapes\n",
			gs.PriorWeight, gs.Evidence, gs.Admits, gs.Holds, gs.Escapes)
		printComparison("cold-start vs default", harness.Compare(def, cold))

		// The side-by-side the prior exists to approximate: profiled
		// guidance, when a trained model is on disk.
		if f, err := os.Open(*modelPath); err == nil {
			m, err := model.Decode(f)
			f.Close()
			if err != nil {
				fatalf(exitIO, "decoding model %s: %v", *modelPath, err)
			}
			pg := gopts
			pg.Tfactor, pg.K, pg.Inject = *freq, *k, inj
			pctrl := guide.New(m.Prune(*freq), pg)
			prof, err := e.Measure(pctrl)
			if err != nil {
				fatalf(measureExitCode(err), "guided run: %v", err)
			}
			printSummary("guided", *bench, prof, false)
			printComparison("profiled vs default", harness.Compare(def, prof))
		} else {
			fmt.Printf("no trained model at %s: skipping the profiled side (run -op mcmc_data to compare)\n", *modelPath)
		}

	case "online":
		// The drifting-workload three-way: passthrough vs frozen
		// offline model vs the continuously-learning online controller,
		// on the same seeded simulator runs. -freq left at its default
		// uses the simulator's own sim-scale Tfactor.
		o := harness.DriftCompareOptions{
			Seeds:       *runs,
			EpochEvents: *epochEvents,
			StateBudget: *stateBudget,
			DriftTrip:   *driftTrip,
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "freq" {
				o.Tfactor = *freq
			}
		})
		cmp := harness.CompareDrift(o)
		fmt.Printf("drifting workload, %d seeds: offline model %d states after pruning\n",
			o.Seeds, cmp.ProfiledStates)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "mode\tfinish stddev\tpost-shift aborts")
		fmt.Fprintf(tw, "passthrough\t%.3f\t%d\n", cmp.PassSD, cmp.PassPost)
		fmt.Fprintf(tw, "frozen offline\t%.3f\t%d\n", cmp.FrozenSD, cmp.FrozenPost)
		fmt.Fprintf(tw, "online\t%.3f\t%d\n", cmp.OnlineSD, cmp.OnlinePost)
		tw.Flush()
		fmt.Printf("frozen gate: %d health-ladder degradations\n", cmp.FrozenDegradations)
		fmt.Printf("online guards: %d quarantines, %d re-arms, %d model swaps\n",
			cmp.OnlineQuarantines, cmp.OnlineRearms, cmp.OnlineSwaps)
		switch {
		case cmp.OnlineSD <= cmp.PassSD && cmp.OnlineSD <= cmp.FrozenSD:
			fmt.Println("verdict: online guidance has the lowest post-shift variance")
		case cmp.OnlineSD <= cmp.FrozenSD:
			fmt.Println("verdict: online beats the frozen model but not passthrough on this run")
		default:
			fmt.Println("verdict: online did not win on this run (try more -runs seeds)")
		}

	case "overload":
		// The contention-collapse curve: each oversubscription factor
		// runs the same seeded workloads with and without the admission
		// controller. -runs is the seed count per point; -threads the
		// simulated core width.
		o := harness.OversubCompareOptions{
			Cores: *threads,
			Seeds: *runs,
			Limiter: overload.Options{
				MaxInflight: *maxInflight,
				Mode:        limMode,
				Inject:      inj,
			},
		}
		cmp := harness.CompareOversub(o)
		fmt.Printf("oversubscription collapse curve: %d cores, %d seeds per point, %s limiter\n",
			cmp.Cores, o.Seeds, limMode)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "factor\tworkers\tprotected thr\tunprotected thr\tprot ab/commit\tunprot ab/commit\tend limit\tsheds")
		for _, pt := range cmp.Points {
			fmt.Fprintf(tw, "%dx\t%d\t%.3f\t%.3f\t%.2f\t%.2f\t%.1f\t%d\n",
				pt.Factor, pt.Workers, pt.ProtectedThr, pt.UnprotectedThr,
				pt.ProtectedAborts, pt.UnprotectedAborts, pt.EndLimit, pt.Sheds)
		}
		tw.Flush()
		last := cmp.Points[len(cmp.Points)-1]
		fmt.Printf("retention at %dx: protected %.2f, unprotected %.2f (AIMD moves: %d backoffs, %d growths)\n",
			last.Factor, cmp.ProtectedRetention, cmp.UnprotectedRetention, last.Backoffs, last.Growths)
		if cmp.ProtectedRetention >= 0.7 && cmp.ProtectedRetention > cmp.UnprotectedRetention {
			fmt.Println("verdict: admission control holds the collapse curve")
		} else {
			fmt.Println("verdict: protection did not hold on this run (try more -runs seeds)")
		}
		if inj != nil {
			fmt.Printf("faults: %s\n", inj.Counts())
		}
		if last.Acquires > 0 {
			if frac := float64(last.Sheds) / float64(last.Acquires); frac > *shedBudget {
				fatalf(exitShed, "shed-exhausted: %.1f%% of admission attempts shed at %dx (budget %.1f%%)",
					100*frac, last.Factor, 100**shedBudget)
			}
		}

	case "default", "orig", "ND_only":
		res, err := e.Measure(nil)
		if err != nil {
			fatalf(measureExitCode(err), "default run: %v", err)
		}
		printSummary("default", *bench, res, *op == "ND_only")
		reportLimiter(res.Overload, *shedBudget)
		if inj != nil {
			fmt.Printf("faults: %s\n", inj.Counts())
		}

	default:
		fatalf(exitUsage, "unknown op %q", *op)
	}
}

// recordOneRun executes a single run with a collector attached and
// returns its transaction sequence.
func recordOneRun(e harness.Experiment) ([]tts.State, error) {
	w, err := harness.NewWorkload(e.Workload)
	if err != nil {
		return nil, err
	}
	s := tl2.New(tl2.Options{Inject: e.Inject})
	col := trace.NewCollector()
	cfg := stamp.Config{Threads: e.Threads, Size: e.MeasureSize, Seed: e.Seed}
	if cfg.Size == stamp.SizeUnset {
		cfg.Size = stamp.Medium
	}
	if _, err := stamp.Run(s, w, cfg, func() { s.SetTracer(col) }); err != nil {
		return nil, err
	}
	seq, _ := col.Sequence()
	return seq, nil
}

func loadModel(path string) *model.TSA {
	f, err := os.Open(path)
	if err != nil {
		fatalf(exitIO, "opening model %s: %v (run -op mcmc_data first)", path, err)
	}
	defer f.Close()
	m, err := model.Decode(f)
	if err != nil {
		fatalf(exitIO, "decoding model %s: %v", path, err)
	}
	return m
}

// printSummary mimics the artifact's AvgSummary files: per-thread mean
// and standard deviation of execution time, plus (for the ND ops) the
// state count and abort distribution.
// measureExitCode distinguishes a shed-exhausted run (exit 6, the
// admission controller rejected calls before they touched the runtime)
// from a transaction deadline miss (exit 5, the runtime ran and lost
// to the clock) from other pipeline failures (exit 4). Shed wins the
// tiebreak when both wrapped sentinels are present — a shed storm is
// the root cause of the deadline misses it provokes.
func measureExitCode(err error) int {
	switch {
	case errors.Is(err, overload.ErrShed):
		return exitShed
	case errors.Is(err, tl2.ErrDeadline):
		return exitDeadline
	}
	return exitPipeline
}

// reportLimiter prints the measured runs' admission-control ledger and
// enforces the -shed budget: rejections beyond the tolerated fraction
// of admission attempts exit shed-exhausted. A run without a limiter
// attached (-max-inflight 0) prints nothing.
func reportLimiter(st overload.Stats, budget float64) {
	if st.Acquires == 0 {
		return
	}
	fmt.Printf("%s\n", st) // Stats.String carries the "overload:" prefix
	if frac := float64(st.Sheds) / float64(st.Acquires); frac > budget {
		fatalf(exitShed, "shed-exhausted: %.1f%% of admission attempts shed (budget %.1f%%)",
			100*frac, 100*budget)
	}
}

func printSummary(mode, bench string, res harness.ModeResult, nd bool) {
	fmt.Printf("%s %s: %d commits, %d aborts, mean wall %.6fs\n",
		bench, mode, res.Commits, res.Aborts, res.MeanWall)
	if res.ROCommits > 0 {
		fmt.Printf("readonly fast path: %d certified commits\n", res.ROCommits)
	}
	harness.RenderProgress(os.Stdout, res, 8)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "thread\tmean(s)\tstddev(s)")
	sds := res.ThreadStdDevs()
	for t, xs := range res.ThreadTimes {
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		fmt.Fprintf(tw, "%d\t%.6f\t%.6f\n", t, mean, sds[t])
	}
	tw.Flush()
	if nd {
		fmt.Printf("%s %d\n", bench, res.DistinctStates)
		for t, h := range res.AbortHist {
			fmt.Printf("abortsThread%d: ", t)
			vs, fs := h.Series()
			for i := range vs {
				fmt.Printf("%d:%d ", vs[i], fs[i])
			}
			fmt.Println()
		}
	}
}

// printComparison is the one-line guided-vs-default verdict the
// coldstart op prints per mode pair (positive percentages = improved).
func printComparison(label string, c harness.Comparison) {
	fmt.Printf("%s: variance %+.1f%%, abort tail %+.1f%%, non-determinism %+.1f%%, aborts %+.1f%%, slowdown %.2fx\n",
		label, c.AvgVarianceImprovement(), c.AvgTailImprovement(),
		c.NonDetReduction, c.AbortReduction, c.Slowdown)
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gstm: "+format+"\n", args...)
	os.Exit(code)
}
