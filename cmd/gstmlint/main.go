// Command gstmlint is the repository's STM-aware linter: it loads
// packages from source (stdlib go/parser + go/types, no x/tools),
// runs the internal/lint checker registry over them, and reports
// file:line:col diagnostics with stable check IDs.
//
// Usage:
//
//	gstmlint [-checks gstm001,gstm003] [-skip gstm010] [-list] [-json] [-v] [packages...]
//	gstmlint -fix [-diff] [packages...]
//	gstmlint -footprint [-json] [packages...]
//	gstmlint -prior out.tsa [-prior-threads N] [packages...]
//	gstmlint -manifest out.gsm [packages...]
//
// Packages are directories or "dir/..." wildcards (default "./...").
// The exit code is the CI contract: 0 clean, 1 diagnostics found,
// 2 usage or load failure. Suppress individual findings with an
// inline //gstm:ignore <ids> directive; see README "Transaction
// safety rules".
//
// -checks selects the checks to run by ID or name; -skip subtracts
// from that set (from all checks when -checks is absent). With -json
// the first output line echoes the selected set as {"checks":[...]},
// so CI logs record exactly what gated the run.
//
// -json switches lint output to one JSON object per diagnostic per
// line (file, line, col, check, message, chain, fixable), for editor
// and CI integration.
//
// -fix applies the machine-applicable suggested fixes (gstm005's
// dropped error, gstm007's dead read, gstm008's Atomic→AtomicCtx) and
// rewrites the files gofmt-clean; with -diff it prints the rewrites as
// unified diffs instead of writing anything — the CI dry-run gate.
//
// -footprint skips linting and instead prints the static transaction
// footprint report: for every Atomic call site, the may-read/may-write
// sets of transactional storage (propagated through helper calls), and
// the static conflict graph those sets induce — the compile-time
// analogue of the TSA model's abort edges. Module-local imports of the
// named packages are loaded too, so footprints of an entry point
// include the workload packages it calls into.
//
// -prior lowers that same conflict graph into a synthetic cold-start
// TSA (see internal/lint.SynthesizePrior) and writes it to the named
// file in the model container format, loadable by `gstm -static-prior`.
// -footprint and -prior share a single load+footprint pass; add -lint
// to run the checks over the same loaded packages too.
//
// -manifest runs the interprocedural effect inference (readonly /
// write-bounded / unknown per Atomic site, see internal/lint.InferEffects)
// and writes the sealed site manifest to the named file. The manifest
// is what gstm.Options.Manifest loads to unlock the certified
// read-only fast paths; `gstm -manifest` and the check.sh freshness
// gate consume the same file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gstm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gstmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated check IDs or names to run (default: all)")
	skip := fs.String("skip", "", "comma-separated check IDs or names to exclude from the selected set")
	list := fs.Bool("list", false, "list registered checks and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic (or the footprint graph as JSON with -footprint)")
	footprint := fs.Bool("footprint", false, "print static transaction footprints and the conflict graph instead of linting")
	priorOut := fs.String("prior", "", "synthesize a cold-start TSA from the static conflict graph and write it to this file")
	priorThreads := fs.Int("prior-threads", lint.DefaultPriorThreads, "thread count the -prior model is materialized for")
	manifestOut := fs.String("manifest", "", "infer per-site effect classes and write the sealed site manifest to this file")
	lintToo := fs.Bool("lint", false, "also run the lint checks when -footprint or -prior is given")
	fix := fs.Bool("fix", false, "apply machine-applicable suggested fixes (rewrites files gofmt-clean)")
	diff := fs.Bool("diff", false, "with -fix: print the rewrites as diffs instead of writing files")
	verbose := fs.Bool("v", false, "also print type-check warnings for packages that do not fully type-check")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gstmlint [flags] [packages...]\n\nSTM-aware static analysis for gstm transaction bodies.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diff && !*fix {
		fmt.Fprintf(stderr, "gstmlint: -diff requires -fix\n")
		return 2
	}

	if *list {
		for _, c := range lint.Checkers() {
			fmt.Fprintf(stdout, "%s %s\n    %s\n", c.ID(), c.Name(), c.Doc())
		}
		return 0
	}

	// Resolve the selected check set: -checks narrows (default: all
	// registered), -skip subtracts. The set is resolved here once so
	// the -json echo and the run agree on it.
	resolve := func(csv string) ([]lint.Checker, bool) {
		var out []lint.Checker
		for _, id := range strings.Split(csv, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			c, ok := lint.Lookup(id)
			if !ok {
				fmt.Fprintf(stderr, "gstmlint: unknown check %q (try -list)\n", id)
				return nil, false
			}
			out = append(out, c)
		}
		return out, true
	}
	checkers := lint.Checkers()
	if *checks != "" {
		var ok bool
		if checkers, ok = resolve(*checks); !ok {
			return 2
		}
	}
	if *skip != "" {
		skipped, ok := resolve(*skip)
		if !ok {
			return 2
		}
		drop := map[string]bool{}
		for _, c := range skipped {
			drop[c.ID()] = true
		}
		kept := checkers[:0:0]
		for _, c := range checkers {
			if !drop[c.ID()] {
				kept = append(kept, c)
			}
		}
		checkers = kept
	}
	var checkIDs []string
	for _, c := range checkers {
		checkIDs = append(checkIDs, c.ID())
	}
	sort.Strings(checkIDs)

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "gstmlint: %v\n", err)
		return 2
	}
	// Footprints (and the prior synthesized from them) follow calls
	// into workload packages, so those modes pull in module-local
	// dependencies of the named entry points. Everything downstream —
	// footprint report, prior synthesis, and -lint — shares this one
	// load pass; lint.Run skips the dependency-only packages itself.
	needGraph := *footprint || *priorOut != "" || *manifestOut != ""
	load := loader.Load
	if needGraph {
		load = loader.LoadWithDeps
	}
	pkgs, err := load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "gstmlint: %v\n", err)
		return 2
	}

	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "gstmlint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	if needGraph {
		g := lint.Footprint(pkgs, loader.ModuleRoot)
		if *footprint {
			if *jsonOut {
				if err := g.RenderJSON(stdout); err != nil {
					fmt.Fprintf(stderr, "gstmlint: %v\n", err)
					return 2
				}
			} else {
				g.RenderText(stdout)
			}
		}
		if *priorOut != "" {
			prior, err := lint.SynthesizePrior(g, lint.PriorOptions{Threads: *priorThreads})
			if err != nil {
				fmt.Fprintf(stderr, "gstmlint: %v\n", err)
				return 2
			}
			f, err := os.Create(*priorOut)
			if err != nil {
				fmt.Fprintf(stderr, "gstmlint: %v\n", err)
				return 2
			}
			if err := prior.Encode(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(stderr, "gstmlint: writing prior: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "gstmlint: prior: %d states, %d edges (%d threads) -> %s\n",
				prior.NumStates(), prior.NumEdges(), prior.Threads, *priorOut)
		}
		if *manifestOut != "" {
			m := lint.BuildManifest(lint.InferEffects(pkgs, loader.ModuleRoot))
			if err := m.WriteFile(*manifestOut); err != nil {
				fmt.Fprintf(stderr, "gstmlint: writing manifest: %v\n", err)
				return 2
			}
			ro, wb, unk := m.Counts()
			fmt.Fprintf(stdout, "gstmlint: manifest: %d sites (%d readonly, %d write-bounded, %d unknown), %d certified tx -> %s\n",
				len(m.Sites), ro, wb, unk, len(m.CertifiedReadOnly()), *manifestOut)
		}
		if !*lintToo {
			return 0
		}
	}

	cwd, _ := os.Getwd()
	rel := func(file string) string {
		if cwd == "" {
			return file
		}
		if r, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return file
	}
	diags := lint.Run(pkgs, checkers)

	enc := json.NewEncoder(stdout)
	if *jsonOut {
		// First line: the selected check set, so CI logs record exactly
		// which checks gated this run.
		echo := struct {
			Checks []string `json:"checks"`
		}{checkIDs}
		if err := enc.Encode(echo); err != nil {
			fmt.Fprintf(stderr, "gstmlint: %v\n", err)
			return 2
		}
	}

	if *fix {
		fixed, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(stderr, "gstmlint: %v\n", err)
			return 2
		}
		files := make([]string, 0, len(fixed))
		for file := range fixed {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			if *diff {
				before, err := os.ReadFile(file)
				if err != nil {
					fmt.Fprintf(stderr, "gstmlint: %v\n", err)
					return 2
				}
				lint.RenderDiff(stdout, rel(file), before, fixed[file])
				continue
			}
			if err := os.WriteFile(file, fixed[file], 0o644); err != nil {
				fmt.Fprintf(stderr, "gstmlint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "gstmlint: fixed %s\n", rel(file))
		}
	}

	for _, d := range diags {
		file := rel(d.Position.Filename)
		if *jsonOut {
			// One object per line: stable field set for tooling.
			rec := struct {
				File    string   `json:"file"`
				Line    int      `json:"line"`
				Col     int      `json:"col"`
				Check   string   `json:"check"`
				Message string   `json:"message"`
				Chain   []string `json:"chain,omitempty"`
				Fixable bool     `json:"fixable,omitempty"`
			}{file, d.Position.Line, d.Position.Column, d.Check, d.Message, d.Chain, d.Fix != nil}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintf(stderr, "gstmlint: %v\n", err)
				return 2
			}
			continue
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", file, d.Position.Line, d.Position.Column, d.Message, d.Check)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "gstmlint: %d issue(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
