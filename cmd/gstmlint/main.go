// Command gstmlint is the repository's STM-aware linter: it loads
// packages from source (stdlib go/parser + go/types, no x/tools),
// runs the internal/lint checker registry over them, and reports
// file:line:col diagnostics with stable check IDs.
//
// Usage:
//
//	gstmlint [-checks gstm001,gstm003] [-list] [-json] [-v] [packages...]
//	gstmlint -footprint [-json] [packages...]
//
// Packages are directories or "dir/..." wildcards (default "./...").
// The exit code is the CI contract: 0 clean, 1 diagnostics found,
// 2 usage or load failure. Suppress individual findings with an
// inline //gstm:ignore [ids...] directive; see README "Transaction
// safety rules".
//
// -json switches lint output to one JSON object per diagnostic per
// line (file, line, col, check, message, chain), for editor and CI
// integration.
//
// -footprint skips linting and instead prints the static transaction
// footprint report: for every Atomic call site, the may-read/may-write
// sets of transactional storage (propagated through helper calls), and
// the static conflict graph those sets induce — the compile-time
// analogue of the TSA model's abort edges. Module-local imports of the
// named packages are loaded too, so footprints of an entry point
// include the workload packages it calls into.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gstm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gstmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated check IDs or names to run (default: all)")
	list := fs.Bool("list", false, "list registered checks and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic (or the footprint graph as JSON with -footprint)")
	footprint := fs.Bool("footprint", false, "print static transaction footprints and the conflict graph instead of linting")
	verbose := fs.Bool("v", false, "also print type-check warnings for packages that do not fully type-check")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gstmlint [flags] [packages...]\n\nSTM-aware static analysis for gstm transaction bodies.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range lint.Checkers() {
			fmt.Fprintf(stdout, "%s %s\n    %s\n", c.ID(), c.Name(), c.Doc())
		}
		return 0
	}

	var checkers []lint.Checker
	if *checks != "" {
		for _, id := range strings.Split(*checks, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			c, ok := lint.Lookup(id)
			if !ok {
				fmt.Fprintf(stderr, "gstmlint: unknown check %q (try -list)\n", id)
				return 2
			}
			checkers = append(checkers, c)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "gstmlint: %v\n", err)
		return 2
	}
	load := loader.Load
	if *footprint {
		// Footprints follow calls into workload packages, so pull in
		// module-local dependencies of the named entry points.
		load = loader.LoadWithDeps
	}
	pkgs, err := load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "gstmlint: %v\n", err)
		return 2
	}

	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "gstmlint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	if *footprint {
		g := lint.Footprint(pkgs, loader.ModuleRoot)
		if *jsonOut {
			if err := g.RenderJSON(stdout); err != nil {
				fmt.Fprintf(stderr, "gstmlint: %v\n", err)
				return 2
			}
		} else {
			g.RenderText(stdout)
		}
		return 0
	}

	cwd, _ := os.Getwd()
	diags := lint.Run(pkgs, checkers)
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		file := d.Position.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		if *jsonOut {
			// One object per line: stable field set for tooling.
			rec := struct {
				File    string   `json:"file"`
				Line    int      `json:"line"`
				Col     int      `json:"col"`
				Check   string   `json:"check"`
				Message string   `json:"message"`
				Chain   []string `json:"chain,omitempty"`
			}{file, d.Position.Line, d.Position.Column, d.Check, d.Message, d.Chain}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintf(stderr, "gstmlint: %v\n", err)
				return 2
			}
			continue
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", file, d.Position.Line, d.Position.Column, d.Message, d.Check)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "gstmlint: %d issue(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
