// Command gstmlint is the repository's STM-aware linter: it loads
// packages from source (stdlib go/parser + go/types, no x/tools),
// runs the internal/lint checker registry over them, and reports
// file:line:col diagnostics with stable check IDs.
//
// Usage:
//
//	gstmlint [-checks gstm001,gstm003] [-list] [-v] [packages...]
//
// Packages are directories or "dir/..." wildcards (default "./...").
// The exit code is the CI contract: 0 clean, 1 diagnostics found,
// 2 usage or load failure. Suppress individual findings with an
// inline //gstm:ignore [ids...] directive; see README "Transaction
// safety rules".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gstm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gstmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated check IDs or names to run (default: all)")
	list := fs.Bool("list", false, "list registered checks and exit")
	verbose := fs.Bool("v", false, "also print type-check warnings for packages that do not fully type-check")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gstmlint [flags] [packages...]\n\nSTM-aware static analysis for gstm transaction bodies.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range lint.Checkers() {
			fmt.Fprintf(stdout, "%s %s\n    %s\n", c.ID(), c.Name(), c.Doc())
		}
		return 0
	}

	var checkers []lint.Checker
	if *checks != "" {
		for _, id := range strings.Split(*checks, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			c, ok := lint.Lookup(id)
			if !ok {
				fmt.Fprintf(stderr, "gstmlint: unknown check %q (try -list)\n", id)
				return 2
			}
			checkers = append(checkers, c)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "gstmlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "gstmlint: %v\n", err)
		return 2
	}

	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "gstmlint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	cwd, _ := os.Getwd()
	diags := lint.Run(pkgs, checkers)
	for _, d := range diags {
		file := d.Position.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", file, d.Position.Line, d.Position.Column, d.Message, d.Check)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "gstmlint: %d issue(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
