package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gstm/internal/effect"
	"gstm/internal/model"
)

// runCapture invokes run() with stdout/stderr redirected to temp files
// and returns the exit code and both streams.
func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	capture := func(name string) (*os.File, func() string) {
		f, err := os.CreateTemp(t.TempDir(), name)
		if err != nil {
			t.Fatalf("CreateTemp: %v", err)
		}
		return f, func() string {
			data, err := os.ReadFile(f.Name())
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			f.Close()
			return string(data)
		}
	}
	outF, outRead := capture("stdout")
	errF, errRead := capture("stderr")
	code = run(args, outF, errF)
	return code, outRead(), errRead()
}

// TestJSONOutput pins the -json contract: one object per line with the
// stable field set, same findings and exit code as the text mode.
func TestJSONOutput(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "deadread")
	code, stdout, _ := runCapture(t, "-json", "-checks", "gstm007", fixture)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has findings)", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) < 3 {
		t.Fatalf("got %d JSON lines, want echo + several diagnostics:\n%s", len(lines), stdout)
	}

	// The first line echoes the selected check set.
	var echo struct {
		Checks []string `json:"checks"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &echo); err != nil {
		t.Fatalf("echo line is not valid JSON: %v\n%s", err, lines[0])
	}
	if len(echo.Checks) != 1 || echo.Checks[0] != "gstm007" {
		t.Errorf("echoed checks = %v, want [gstm007]", echo.Checks)
	}

	for _, line := range lines[1:] {
		var rec struct {
			File    string   `json:"file"`
			Line    int      `json:"line"`
			Col     int      `json:"col"`
			Check   string   `json:"check"`
			Message string   `json:"message"`
			Chain   []string `json:"chain"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, line)
		}
		if rec.File == "" || rec.Line == 0 || rec.Check != "gstm007" || rec.Message == "" {
			t.Errorf("incomplete record: %s", line)
		}
	}
}

// TestSkipFlag pins -skip: subtracting the only firing check from the
// full set silences the fixture, and the -json echo reflects the
// reduced selection.
func TestSkipFlag(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "deadread")

	// Sanity: the fixture has gstm007 findings without -skip.
	if code, _, _ := runCapture(t, "-checks", "gstm007", fixture); code != 1 {
		t.Fatalf("baseline exit code = %d, want 1", code)
	}

	code, stdout, stderr := runCapture(t, "-json", "-skip", "gstm007", fixture)
	if code != 0 {
		t.Fatalf("exit code with -skip = %d, want 0; stderr:\n%s\nstdout:\n%s", code, stderr, stdout)
	}
	var echo struct {
		Checks []string `json:"checks"`
	}
	first := strings.SplitN(strings.TrimSpace(stdout), "\n", 2)[0]
	if err := json.Unmarshal([]byte(first), &echo); err != nil {
		t.Fatalf("echo line invalid: %v\n%s", err, first)
	}
	for _, id := range echo.Checks {
		if id == "gstm007" {
			t.Errorf("skipped check still in echoed set: %v", echo.Checks)
		}
	}
	if len(echo.Checks) == 0 {
		t.Error("echoed set empty; -skip should leave the other checks selected")
	}

	// Unknown IDs are a usage error, same as -checks.
	if code, _, stderr := runCapture(t, "-skip", "nosuch", fixture); code != 2 || !strings.Contains(stderr, "unknown check") {
		t.Errorf("unknown -skip id: code = %d, stderr = %q; want usage error 2", code, stderr)
	}
}

// TestManifestFlag generates the sealed effect manifest from the
// quickstart example and checks it decodes with classified sites.
func TestManifestFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sites.gsm")
	example := filepath.Join("..", "..", "examples", "quickstart")
	code, stdout, stderr := runCapture(t, "-manifest", out, example)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "manifest:") {
		t.Errorf("no manifest summary in output:\n%s", stdout)
	}
	m, err := effect.ReadFile(out)
	if err != nil {
		t.Fatalf("written manifest does not decode: %v", err)
	}
	if len(m.Sites) == 0 {
		t.Error("manifest has no sites")
	}
	for _, s := range m.Sites {
		if s.Key == "" {
			t.Errorf("site with empty key: %+v", s)
		}
	}
}

// TestJSONChain checks that interprocedural findings carry their call
// chain through the JSON encoding.
func TestJSONChain(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "transitive")
	code, stdout, _ := runCapture(t, "-json", "-checks", "gstm006", fixture)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	sawChain := false
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		var rec struct {
			Chain []string `json:"chain"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, line)
		}
		if len(rec.Chain) >= 2 {
			sawChain = true
		}
	}
	if !sawChain {
		t.Errorf("no gstm006 record carried a call chain:\n%s", stdout)
	}
}

// TestFootprintFlag smoke-tests the -footprint mode through the CLI:
// text and JSON renderings of a one-site example.
func TestFootprintFlag(t *testing.T) {
	example := filepath.Join("..", "..", "examples", "quickstart")
	code, stdout, stderr := runCapture(t, "-footprint", example)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"static transaction footprints (1 sites)", "quickstart.main.bank", "static conflict graph"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("text output missing %q:\n%s", want, stdout)
		}
	}

	code, stdout, _ = runCapture(t, "-footprint", "-json", example)
	if code != 0 {
		t.Fatalf("json exit code = %d, want 0", code)
	}
	var g struct {
		Sites []struct {
			Reads  []string `json:"reads"`
			Writes []string `json:"writes"`
		} `json:"sites"`
		Edges []struct{ A, B int } `json:"edges"`
	}
	if err := json.Unmarshal([]byte(stdout), &g); err != nil {
		t.Fatalf("footprint JSON invalid: %v", err)
	}
	if len(g.Sites) != 1 || len(g.Edges) != 1 {
		t.Errorf("got %d sites / %d edges, want 1 / 1", len(g.Sites), len(g.Edges))
	}
}

// TestFixDiffDryRun pins the CI dry-run gate: -fix -diff prints the
// suggested rewrites as diffs, writes nothing, and still reports the
// findings with exit code 1.
func TestFixDiffDryRun(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "deadread")
	src := filepath.Join(fixture, "deadread.go")
	before, err := os.ReadFile(src)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	code, stdout, _ := runCapture(t, "-fix", "-diff", "-checks", "gstm007", fixture)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has findings)", code)
	}
	if !strings.Contains(stdout, "--- a/") || !strings.Contains(stdout, "+++ b/") {
		t.Errorf("no diff in output:\n%s", stdout)
	}
	after, err := os.ReadFile(src)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(before) != string(after) {
		t.Fatal("-fix -diff modified the fixture on disk")
	}
}

// TestDiffRequiresFix pins the usage contract.
func TestDiffRequiresFix(t *testing.T) {
	code, _, stderr := runCapture(t, "-diff", "./...")
	if code != 2 || !strings.Contains(stderr, "-diff requires -fix") {
		t.Errorf("code = %d, stderr = %q; want usage error 2", code, stderr)
	}
}

// TestPriorFlag generates a cold-start model from the examples and
// checks the written container decodes with the right thread count.
func TestPriorFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "prior.tsa")
	example := filepath.Join("..", "..", "examples", "quickstart")
	code, stdout, stderr := runCapture(t, "-prior", out, "-prior-threads", "4", example)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "prior:") {
		t.Errorf("no synthesis summary in output:\n%s", stdout)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("prior file missing: %v", err)
	}
	defer f.Close()
	m, err := model.Decode(f)
	if err != nil {
		t.Fatalf("written prior does not decode: %v", err)
	}
	if m.Threads != 4 || m.NumStates() == 0 {
		t.Errorf("decoded prior: %d threads, %d states; want 4 threads and some states", m.Threads, m.NumStates())
	}
}

// TestPriorWithLint shares one load pass between prior synthesis and
// the checks: the fixture's findings still surface (exit 1) and the
// prior is still written.
func TestPriorWithLint(t *testing.T) {
	out := filepath.Join(t.TempDir(), "prior.tsa")
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "deadread")
	code, stdout, _ := runCapture(t, "-prior", out, "-lint", "-checks", "gstm007", fixture)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has findings)", code)
	}
	if !strings.Contains(stdout, "gstm007") {
		t.Errorf("lint findings missing from combined run:\n%s", stdout)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("prior not written in combined run: %v", err)
	}
}
