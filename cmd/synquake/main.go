// Command synquake regenerates the paper's SynQuake evaluation — Table
// V and Figures 11/12: train the model on the 4worst_case and 4moving
// quests, then compare guided and default execution on 4quadrants and
// 4center_spread6, reporting frame-rate variance improvement,
// abort-ratio reduction and slowdown.
//
// Usage:
//
//	synquake [flags]
//	  -threads 8,16       thread counts to sweep
//	  -players 1000       population (paper: 1000)
//	  -map 1024           map side (paper: 1024)
//	  -train-frames 1000  training frame budget (paper: 1000)
//	  -test-frames 10000  test frame budget (paper: 10000)
//	  -runs 3             repetitions per mode
//	  -tfactor 4 -seed 1
//
// The defaults match the paper but take a while; scale down frames and
// players for smoke runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gstm/internal/synquake"
)

func main() {
	var (
		threadsFlag  = flag.String("threads", "8,16", "thread counts to sweep")
		players      = flag.Int("players", 1000, "player population")
		mapSize      = flag.Int("map", 1024, "map side length")
		trainFrames  = flag.Int("train-frames", 1000, "training frames per quest")
		testFrames   = flag.Int("test-frames", 10000, "test frames per run")
		runs         = flag.Int("runs", 3, "measurement repetitions per mode")
		tfactor      = flag.Float64("tfactor", 4, "guidance threshold divisor")
		seed         = flag.Int64("seed", 1, "world seed")
		maxprocsFlag = flag.Int("gomaxprocs", 0, "override GOMAXPROCS (0 = leave as is)")
		quiet        = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *maxprocsFlag > 0 {
		runtime.GOMAXPROCS(*maxprocsFlag)
	}

	var threads []int
	for _, part := range strings.Split(*threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "synquake: bad -threads %q\n", part)
			os.Exit(1)
		}
		threads = append(threads, n)
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	res, err := synquake.RunSuite(synquake.Suite{
		Threads:     threads,
		Players:     *players,
		MapSize:     *mapSize,
		TrainFrames: *trainFrames,
		TestFrames:  *testFrames,
		Runs:        *runs,
		Tfactor:     *tfactor,
		Seed:        *seed,
	}, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "synquake: %v\n", err)
		os.Exit(1)
	}

	res.RenderTableV(os.Stdout)
	fmt.Println()
	res.RenderQuestFigure(os.Stdout, "4quadrants", "11")
	fmt.Println()
	res.RenderQuestFigure(os.Stdout, "4center_spread6", "12")
}
