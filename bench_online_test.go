package gstm

// Online-guidance overhead benchmarks (scripts/bench.sh writes them to
// BENCH_online.json). Three claims, each against a static-gate baseline
// in bench_micro_test.go:
//
//   - BenchmarkOnlineGateOverhead vs BenchmarkGateOverhead: attaching
//     the streaming learner to a guided STM must cost only the tracer
//     fan-out on the commit path — epoch builds and model swaps happen
//     off it.
//   - BenchmarkOnlineObserve: the raw per-event enqueue (the learner's
//     share of every commit/abort), pinned at 0 allocs/op at steady
//     state by TestHotPathAllocationFree.
//   - BenchmarkOnlineEpochSwap: the full streaming pipeline — drain,
//     state rebuild, decay/fold, snapshot audit and lock-free model
//     swap — amortized per event at a sim-scale epoch length.

import (
	"testing"

	"gstm/internal/guide"
	"gstm/internal/harness"
	"gstm/internal/online"
	"gstm/internal/stamp"
	"gstm/internal/tl2"
	"gstm/internal/tts"
)

// BenchmarkOnlineGateOverhead is BenchmarkGateOverhead with the
// background learner riding the tracer: the commit-path delta between
// the two is the online controller's whole footprint.
func BenchmarkOnlineGateOverhead(b *testing.B) {
	e := harness.Experiment{
		Workload: "kmeans", Threads: 2,
		ProfileRuns: 2, MeasureRuns: 1,
		ProfileSize: stamp.Small, MeasureSize: stamp.Small, Seed: 3,
	}
	m, err := e.Profile()
	if err != nil {
		b.Fatal(err)
	}
	ctrl := guide.New(m, guide.Options{K: 1})
	s := tl2.New(tl2.Options{YieldEvery: -1})
	l := GuideOnline(s, ctrl, OnlineOptions{}, nil)
	defer l.Close()
	v := tl2.NewVar(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(0, 0, func(tx *tl2.Tx) error {
			tx.Write(v, tx.Read(v)+1)
			return nil
		})
	}
}

// BenchmarkOnlineObserve measures the tracer enqueue alone: one commit
// plus one abort event per iteration into a learner that never drains
// (asynchronous, not started), so the cost is the ring write itself and,
// once full, the drop branch — the two states a loaded system sees.
func BenchmarkOnlineObserve(b *testing.B) {
	ctrl := guide.New(nil, guide.Options{})
	l := online.New(ctrl, online.Options{EpochEvents: 1 << 20})
	pair := tts.Pair{Tx: 1, Thread: 1}
	inst := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst++
		l.OnCommit(inst, pair)
		l.OnAbort(pair, inst)
	}
}

// BenchmarkOnlineEpochSwap pushes an alternating two-thread conflict
// stream through a synchronous learner, so every EpochEvents-th event
// pays a full epoch: drain, sort, state rebuild, decay, fold, audit
// and (when the snapshot is healthy) the atomic model swap. The
// reported per-event cost is the amortized streaming-pipeline overhead;
// the swap counter check keeps the bench honest about snapshots
// actually installing.
func BenchmarkOnlineEpochSwap(b *testing.B) {
	ctrl := guide.New(nil, guide.Options{Tfactor: 1.5})
	l := online.New(ctrl, online.Options{
		EpochEvents: 256,
		Tfactor:     1.5,
		MaxMetric:   80, // two-pair stream: tiny model, same bar as the sim
		Synchronous: true,
	})
	pairs := [2]tts.Pair{
		{Tx: 0, Thread: 0},
		{Tx: 1, Thread: 1},
	}
	// Mostly-alternating with every 9th slot repeating: a pure
	// alternation has out-degree 1 (no bias for the analyzer to
	// exploit, so nothing would ever swap in); the repeats give each
	// state a biased second destination, like real jittered traffic.
	var pat [64]int
	x := 0
	for i := range pat {
		pat[i] = x
		if i%9 != 0 {
			x = 1 - x
		}
	}
	inst := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst++
		p := pat[i%len(pat)]
		l.OnCommit(inst, pairs[p])
		l.OnAbort(pairs[1-p], inst)
	}
	b.StopTimer()
	l.Close()
	if st := l.Stats(); b.N > 4096 && st.Swaps == 0 {
		b.Fatalf("no snapshot ever swapped in: %+v", st)
	}
}
