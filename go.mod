module gstm

go 1.22
