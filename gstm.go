// Package gstm is a guided software transactional memory for Go: a
// from-scratch implementation of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (Mururu,
// Gavrilovska, Pande — CGO 2019).
//
// The package bundles two STM runtimes and the paper's variance
// pipeline:
//
//   - a TL2 STM (commit-time locking, global version clock, write-back)
//     with transactional Vars, Arrays, Maps and Queues;
//   - a LibTM-style object STM with configurable conflict detection and
//     resolution (see internal/libtm, used by the SynQuake example);
//   - profiling that records thread transactional states (which commit
//     aborted whom), model generation into a probabilistic Thread State
//     Automaton, a model analyzer (guidance metric), and a guided
//     execution controller that gates transaction starts.
//
// Quickstart:
//
//	s := gstm.New(gstm.Options{})
//	v := gstm.NewVar(0)
//	_ = s.Atomic(threadID, txID, func(tx *gstm.Tx) error {
//	    tx.Write(v, tx.Read(v)+1)
//	    return nil
//	})
//
// To reduce variance, profile, build and analyze a model, then attach a
// controller:
//
//	m, _ := gstm.Profile(20, threads, func(s *gstm.STM) error { return runWorkload(s) })
//	rep := gstm.AnalyzeModel(m, 0)
//	if rep.Fit {
//	    ctrl := gstm.NewController(m, 0, 0)
//	    gstm.Guide(s, ctrl, nil)
//	    // subsequent transactions on s follow the model's
//	    // high-probability commit paths
//	}
package gstm

import (
	"gstm/internal/analyze"
	"gstm/internal/effect"
	"gstm/internal/guide"
	"gstm/internal/model"
	"gstm/internal/online"
	"gstm/internal/overload"
	"gstm/internal/progress"
	"gstm/internal/tl2"
	"gstm/internal/trace"
	"gstm/internal/tts"
)

// Core TL2 STM types, re-exported for the public API.
type (
	// ContentionManager arbitrates lock conflicts (see Polite, Karma,
	// Greedy).
	ContentionManager = tl2.ContentionManager
	// Polite, Karma and Greedy are the classic contention managers,
	// provided as baselines to compare against guided execution.
	Polite = tl2.Polite
	// Karma arbitrates by accumulated transactional work.
	Karma = tl2.Karma
	// Greedy arbitrates by transaction age.
	Greedy = tl2.Greedy

	// STM is a TL2 software transactional memory domain.
	STM = tl2.STM
	// Tx is a transaction attempt passed to Atomic callbacks.
	Tx = tl2.Tx
	// Var is a transactional int64 word.
	Var = tl2.Var
	// Options configures an STM.
	Options = tl2.Options
	// ClockMode selects the commit-clock organization
	// (Options.ClockMode): ClockGlobal or ClockSharded.
	ClockMode = tl2.ClockMode
	// Array is a fixed-length transactional int64 sequence.
	Array = tl2.Array
	// Map is a fixed-capacity transactional hash table.
	Map = tl2.Map
	// Queue is a bounded transactional FIFO.
	Queue = tl2.Queue
)

// Modeling and guidance types.
type (
	// Pair identifies a transaction execution: static transaction ID +
	// thread ID.
	Pair = tts.Pair
	// State is a thread transactional state: one commit plus the aborts
	// it caused.
	State = tts.State
	// Model is the Thread State Automaton built from profiled runs.
	Model = model.TSA
	// AnalysisReport is the model analyzer's verdict.
	AnalysisReport = analyze.Report
	// Controller is the guided-execution gate and state tracker.
	Controller = guide.Controller
	// GuideStats counts controller decisions.
	GuideStats = guide.Stats
	// Collector records commit/abort events and groups them into
	// thread transactional state sequences.
	Collector = trace.Collector
	// Tracer is the event sink interface implemented by Collector and
	// Controller.
	Tracer = trace.Tracer
)

// Progress-guarantee types (see internal/progress): STM.AtomicCtx adds
// deadlines and cancellation, escalation falls back to an irrevocable
// serial path, and a livelock watchdog adapts the escalation threshold.
type (
	// ProgressStats is the snapshot returned by (*STM).ProgressStats:
	// escalations, deadline misses, watchdog trips and the effective
	// escalation threshold.
	ProgressStats = progress.Stats
	// LatencyRecorder collects per-(tx,thread) Atomic call latencies;
	// attach with (*STM).SetLatencyRecorder.
	LatencyRecorder = progress.LatencyRecorder
	// PairLatency is one pair's latency percentile summary.
	PairLatency = progress.PairLatency
)

// Static effect certification (see internal/effect): `gstmlint
// -manifest` proves Atomic sites read-only and seals the result into a
// manifest; Options.Manifest cashes the proof in as fast-path commits,
// with GuardMode choosing the dynamic soundness guard's response to a
// write under a certified transaction.
type (
	// Manifest is the sealed static-effect manifest produced by
	// `gstmlint -manifest out.gsm`; attach via Options.Manifest.
	Manifest = effect.Manifest
	// EffectSite is one Atomic call site's entry in a Manifest.
	EffectSite = effect.Site
	// GuardMode selects the certified-readonly soundness guard's
	// response to a trapped write (Options.ROGuard).
	GuardMode = effect.GuardMode
)

// Online continuously-learning guidance (see internal/online): a
// background learner drains the live commit/abort stream into epoch
// snapshots, audits each snapshot, and swaps healthy models into the
// controller lock-free; drift and staleness guards quarantine the gate
// to passthrough and re-arm it when a later epoch probes healthy.
type (
	// OnlineLearner is the streaming TSA controller; attach it with
	// GuideOnline (or wire it as one sink of a MultiTracer).
	OnlineLearner = online.Learner
	// OnlineOptions configures epoch length, state budget, decay,
	// drift/staleness thresholds and event-ring shape.
	OnlineOptions = online.Options
	// OnlineStats is the learner's counter snapshot.
	OnlineStats = online.Stats
)

// Adaptive overload control (see internal/overload): an AIMD
// concurrency limiter with contention-collapse detection and
// deadline-aware, priority-weighted load shedding, attached via
// Options.Overload. Shed calls fail fast with ErrShed before touching
// the runtime; STM.AtomicPri selects the priority class.
type (
	// Limiter is the adaptive admission controller; build with
	// NewLimiter and attach via Options.Overload.
	Limiter = overload.Limiter
	// LimiterOptions configures a Limiter (cap, floor, mode, window,
	// collapse thresholds).
	LimiterOptions = overload.Options
	// LimiterMode selects the limit policy (LimiterAIMD/LimiterFixed).
	LimiterMode = overload.Mode
	// LimiterStats is the limiter's counter snapshot.
	LimiterStats = overload.Stats
	// Pri is an admission priority class for STM.AtomicPri (0..3;
	// lower sheds first).
	Pri = overload.Pri
)

// Limiter modes and priority classes.
const (
	// LimiterAIMD adapts the in-flight cap from collapse signals.
	LimiterAIMD = overload.ModeAIMD
	// LimiterFixed pins the cap at MaxInflight.
	LimiterFixed = overload.ModeFixed
	// PriLow sheds first under backlog pressure; PriCritical last.
	PriLow      = overload.PriLow
	PriNormal   = overload.PriNormal
	PriHigh     = overload.PriHigh
	PriCritical = overload.PriCritical
)

// NewLimiter builds an adaptive admission controller.
func NewLimiter(opts LimiterOptions) *Limiter { return overload.New(opts) }

// ErrShed is returned (wrapped) by Atomic calls the overload limiter
// rejected before any transactional work: the remaining deadline was
// below the predicted queue wait, the priority class's backlog budget
// was exhausted, or an injected shed storm fired. Distinguishable from
// ErrDeadline, which means the runtime ran and lost to the clock.
var ErrShed = overload.ErrShed

// Guard modes for Options.ROGuard.
const (
	// GuardAuto traps under the race detector and recovers otherwise.
	GuardAuto = effect.GuardAuto
	// GuardTrap fails the Atomic call with ErrReadOnlyViolation.
	GuardTrap = effect.GuardTrap
	// GuardRecover decertifies the transaction ID and retries the
	// attempt uncertified.
	GuardRecover = effect.GuardRecover
)

// LoadManifest reads and verifies a sealed effect manifest written by
// `gstmlint -manifest`.
func LoadManifest(path string) (*Manifest, error) { return effect.ReadFile(path) }

// ErrReadOnlyViolation is returned (wrapped, naming the offending site
// key) when a certified-readonly transaction issues a write and
// Options.ROGuard is in trap mode.
var ErrReadOnlyViolation = tl2.ErrReadOnlyViolation

// NewLatencyRecorder returns an empty Atomic latency recorder.
func NewLatencyRecorder() *LatencyRecorder { return progress.NewLatencyRecorder() }

// ErrRetryLimit is returned by Atomic when Options.MaxRetries is
// exceeded.
var ErrRetryLimit = tl2.ErrRetryLimit

// ErrDeadline is returned by AtomicCtx (and by Atomic under
// Options.DefaultDeadline) when the context expires before the
// transaction commits; the returned error also wraps ctx.Err().
var ErrDeadline = tl2.ErrDeadline

// DefaultTfactor is the paper's recommended guidance threshold divisor.
const DefaultTfactor = model.DefaultTfactor

// Commit-clock modes for Options.ClockMode.
const (
	// ClockGlobal is stock TL2's single global version clock.
	ClockGlobal = tl2.ClockGlobal
	// ClockSharded distributes commit-clock traffic over per-shard
	// cache-line-padded clocks so commits scale past one cache line;
	// see the "Performance & scaling" README section.
	ClockSharded = tl2.ClockSharded
)

// DefaultBatchMax is the per-commit coalescing cap for AtomicBatch
// when Options.BatchMax is zero.
const DefaultBatchMax = tl2.DefaultBatchMax

// New returns a TL2 STM with the given options.
func New(opts Options) *STM { return tl2.New(opts) }

// NewVar returns a transactional word initialized to x.
func NewVar(x int64) *Var { return tl2.NewVar(x) }

// NewFloatVar returns a transactional word initialized to f.
func NewFloatVar(f float64) *Var { return tl2.NewFloatVar(f) }

// NewArray returns an Array of n words initialized to init.
func NewArray(n int, init int64) *Array { return tl2.NewArray(n, init) }

// NewMap returns a transactional map sized for at least n entries.
func NewMap(n int) *Map { return tl2.NewMap(n) }

// NewQueue returns a bounded transactional FIFO of capacity n.
func NewQueue(n int) *Queue { return tl2.NewQueue(n) }

// NewCollector returns an empty trace collector.
func NewCollector() *Collector { return trace.NewCollector() }

// MultiTracer fans events out to several sinks (e.g. a Controller and a
// Collector during guided measurement).
func MultiTracer(sinks ...Tracer) Tracer { return trace.Multi(sinks...) }

// BuildModel constructs a Thread State Automaton from profiled
// transaction sequences, one per run (the paper's Algorithm 1).
func BuildModel(threads int, runs ...[]State) *Model {
	return model.Build(threads, runs...)
}

// DecodeModel reads a model from its binary encoding; see
// (*Model).Encode.
var DecodeModel = model.Decode

// AnalyzeModel computes the guidance metric and fit verdict for m.
// tfactor ≤ 0 uses DefaultTfactor.
func AnalyzeModel(m *Model, tfactor float64) AnalysisReport {
	return analyze.Analyze(m, analyze.Options{Tfactor: tfactor})
}

// NewController builds a guided-execution controller from a model that
// passed analysis. tfactor ≤ 0 uses DefaultTfactor; k ≤ 0 uses the
// default progress-escape retry count. The model is pruned to its
// high-probability core first (the paper's Section VI size reduction).
func NewController(m *Model, tfactor float64, k int) *Controller {
	if tfactor <= 0 {
		tfactor = model.DefaultTfactor
	}
	return guide.New(m.Prune(tfactor), guide.Options{Tfactor: tfactor, K: k})
}

// Guide wires a controller into an STM: the controller gates every
// transaction start and observes every commit/abort. If col is non-nil
// it receives the same event stream (for measurement).
func Guide(s *STM, ctrl *Controller, col *Collector) {
	ctrl.Reset()
	if col != nil {
		s.SetTracer(trace.Multi(ctrl, col))
	} else {
		s.SetTracer(ctrl)
	}
	s.SetGate(ctrl)
}

// GuideOnline wires continuously-learning guidance into an STM: ctrl
// gates transaction starts while a background learner drains the
// commit/abort stream, builds epoch snapshots and swaps healthy models
// into ctrl lock-free. The controller may start empty
// (guide.New(nil, ...)); it admits everything until the first healthy
// snapshot lands. The returned learner is already started — call its
// Close method at end of run to flush the final partial epoch, and
// Unguide to detach the STM. If col is non-nil it receives the same
// event stream.
func GuideOnline(s *STM, ctrl *Controller, opts OnlineOptions, col *Collector) *OnlineLearner {
	ctrl.Reset()
	l := online.New(ctrl, opts)
	sinks := []Tracer{ctrl, l}
	if col != nil {
		sinks = append(sinks, col)
	}
	s.SetTracer(trace.Multi(sinks...))
	s.SetGate(ctrl)
	l.Start()
	return l
}

// Unguide removes guidance from an STM, restoring default execution
// with no tracer.
func Unguide(s *STM) {
	s.SetGate(nil)
	s.SetTracer(nil)
}

// Profile runs fn `runs` times, each against a fresh STM with a fresh
// collector attached, and builds a model from the recorded sequences.
// threads records the intended worker count in the model (models are
// per-thread-count, as in the paper).
func Profile(runs, threads int, fn func(s *STM) error) (*Model, error) {
	m := model.New(threads)
	for i := 0; i < runs; i++ {
		s := tl2.New(tl2.Options{})
		col := trace.NewCollector()
		s.SetTracer(col)
		if err := fn(s); err != nil {
			return nil, err
		}
		seq, _ := col.Sequence()
		m.AddRun(seq)
	}
	return m, nil
}
